"""Delta-maintenance of the reverse top-k index under graph updates.

A full index rebuild runs batched BCA from *every* node — the dominant cost
the paper's offline phase pays once (Table 2).  Under churn that cost would
recur per update batch.  :class:`IndexMaintainer` avoids it with
**conservative invalidation**, built on one observation about batched BCA
(Algorithm 1): the trajectory of node ``u``'s refinement reads only the
transition columns of nodes that *propagated* ink, and every propagating
node retains an ``alpha`` share — so the set of columns ever read is covered
by the support of ``u``'s retained/residual ink.  If none of those columns
changed, a from-scratch run on the new graph replays the identical
trajectory and lands in the bit-identical state.

``apply()`` therefore:

1. recomputes only the transition columns of the touched sources
   (:func:`~repro.graph.transition.rebuild_transition_columns`, bit-identical
   to a full rebuild) and diffs them against the old matrix;
2. resolves the hub set under the configured policy — ``"pinned"`` (default)
   keeps the current hubs, since a changed hub *set* poisons every state
   (the hub mask steers every trajectory) and the tie-heavy degree
   heuristic flips on single-edge changes; ``"reselect"`` follows the
   heuristic and degenerates to a full rebuild whenever it moves;
3. recomputes the exact hub proximity columns ``P_H`` (they depend globally
   on the graph) and notes which hub columns actually changed;
4. **invalidates** every non-hub state whose residue/retained support
   touches a changed column — those are reset and re-refined from scratch
   as one :class:`~repro.core.propagation.PropagationKernel` run (a blocked
   multi-source rebuild under the vectorized backend); if the stale
   fraction reaches ``rebuild_ratio``, a full rebuild is cheaper and runs
   instead;
5. **re-materializes** the lower bounds of kept states whose hub ink refers
   to a changed hub column (the dicts are still exact; only the ``P_H``
   expansion moved);
6. swaps the new components into the index *in place*
   (:meth:`~repro.core.index.ReverseTopKIndex.replace_contents`) — one
   version bump, so the serving layer's result cache drops exactly one
   generation — and rebinds the engine's transition caches.

The invariant all of this preserves: after ``apply()``, the maintained index
is **bit-identical** to ``build_index`` run from scratch on the new graph
*under the maintained hub set* (states, columnar views, and therefore every
query answer and statistics counter), as long as no query-time refinement
was persisted in between — under ``"reselect"`` that hub set is exactly the
default build's, so the equivalence is unconditional.  With persisted
refinements the kept states remain *valid* BCA states on the new graph, so
answers still match a fresh engine (same hub set) exactly.  Across
*different* hub sets answers agree except on floating-point knife-edge
ties, where the kth value and the query proximity coincide to the last ulp
and the decision legitimately depends on the rounding path.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Iterable, Optional, Set

import numpy as np

from .._validation import check_positive_float
from ..core.config import IndexParams
from ..core.hubs import HubSet
from ..core.index import NodeState
from ..core.lbi import (
    _compute_hub_matrix,
    build_index,
    default_hub_selection,
)
from ..core.propagation import (
    KernelWorkspace,
    PropagationKernel,
    materialize_lower_bounds,
)
from ..core.query import ReverseTopKEngine
from ..core.sharding import ShardedReverseTopKIndex, build_sharded_index
from ..graph.digraph import DiGraph
from ..graph.transition import rebuild_transition_columns
from ..utils.timer import Timer

#: Default stale-state fraction past which a full rebuild wins.
DEFAULT_REBUILD_RATIO = 0.25

#: Hub policies: keep the built hub set across applies, or re-select each time.
HUB_POLICIES = ("pinned", "reselect")

HubSelector = Callable[[DiGraph, IndexParams], HubSet]


# The default selector IS build_index's default (one shared definition, so
# the "reselect" policy can never drift from what a from-scratch build does).
_degree_hub_selector = default_hub_selection


@dataclass(frozen=True)
class MaintenanceReport:
    """What one :meth:`IndexMaintainer.apply` call did, and what it cost.

    Attributes
    ----------
    n_touched_sources:
        Sources the caller reported as mutated since the last apply.
    n_changed_columns:
        Transition columns that actually differ after the column-level diff.
    n_invalidated:
        Non-hub states reset and re-refined from scratch.
    n_rematerialized:
        Kept states whose lower bounds were re-expanded against the new
        hub columns.
    n_hub_columns:
        Hub proximity columns recomputed.
    staleness:
        Invalidated fraction of the non-hub population (what the rebuild
        threshold is compared against).
    hub_set_changed / full_rebuild:
        Whether the applied hub set differs from the previous one, and
        whether the escape hatch to a from-scratch :func:`build_index` ran
        (hub re-selection under the ``"reselect"`` policy, or staleness).
    changed:
        ``False`` for a pure no-op (every recomputed column bit-identical):
        the index, its version, and every cached answer stay valid.
    index_version:
        The index version after this application.
    seconds:
        Wall-clock cost of the application.
    """

    n_touched_sources: int
    n_changed_columns: int
    n_invalidated: int
    n_rematerialized: int
    n_hub_columns: int
    staleness: float
    hub_set_changed: bool
    full_rebuild: bool
    changed: bool
    index_version: int
    seconds: float

    def as_dict(self) -> Dict[str, object]:
        """JSON-ready representation."""
        return {
            "n_touched_sources": self.n_touched_sources,
            "n_changed_columns": self.n_changed_columns,
            "n_invalidated": self.n_invalidated,
            "n_rematerialized": self.n_rematerialized,
            "n_hub_columns": self.n_hub_columns,
            "staleness": self.staleness,
            "hub_set_changed": self.hub_set_changed,
            "full_rebuild": self.full_rebuild,
            "changed": self.changed,
            "index_version": self.index_version,
            "seconds": self.seconds,
        }


class IndexMaintainer:
    """Keeps a :class:`ReverseTopKEngine` consistent with a mutating graph.

    Parameters
    ----------
    engine:
        The engine to maintain.  Its index is mutated in place and its
        transition caches are rebound on every effective application.
    rebuild_ratio:
        Stale-state fraction (of the non-hub population) at which the
        incremental path gives up and rebuilds from scratch.  ``1.0``
        disables the escape hatch (except for hub-set changes, which always
        rebuild); small values make the maintainer eager to rebuild.
    weighted:
        Whether the engine's transition is the weighted variant (§5.4); the
        column recomputation must replay the same arithmetic.
    hub_policy:
        ``"pinned"`` (the default) keeps the index's hub set fixed for the
        maintainer's lifetime — even full rebuilds reuse it.  The degree
        heuristic is tie-heavy: a single edge near the budget boundary flips
        the selected set, and since a changed hub *set* poisons every
        trajectory, re-selecting per batch degenerates to rebuild-per-batch
        under steady churn.  Hubs are a performance choice, not a
        correctness one — any hub set yields exact answers up to
        floating-point knife-edge ties — so pinning trades slowly-drifting
        hub quality for stable incremental cost (refresh by rebuilding the
        service when drift accumulates).  ``"reselect"`` follows the degree
        heuristic every apply, which keeps the maintained index bit-identical
        to a *default* from-scratch build (the strictest equivalence mode,
        used by the property tests) at the price of frequent rebuilds.
    hub_selector:
        Override for the selection heuristic itself.  The default mirrors
        :func:`build_index`'s degree-based choice; a custom selector must be
        deterministic.
    """

    def __init__(
        self,
        engine: ReverseTopKEngine,
        *,
        rebuild_ratio: float = DEFAULT_REBUILD_RATIO,
        weighted: bool = False,
        hub_policy: str = "pinned",
        hub_selector: Optional[HubSelector] = None,
    ) -> None:
        self.engine = engine
        self.rebuild_ratio = check_positive_float(rebuild_ratio, "rebuild_ratio")
        if self.rebuild_ratio > 1.0:
            raise ValueError(
                f"rebuild_ratio must be in (0, 1], got {self.rebuild_ratio}"
            )
        if hub_policy not in HUB_POLICIES:
            raise ValueError(
                f"hub_policy must be one of {HUB_POLICIES}, got {hub_policy!r}"
            )
        self.weighted = bool(weighted)
        self.hub_policy = hub_policy
        self.hub_selector = (
            hub_selector if hub_selector is not None else _degree_hub_selector
        )
        # One scratch pool shared by every incremental rebuild this
        # maintainer performs: the per-apply kernels are short-lived, but
        # their dense (n, B) planes are not re-allocated between applies.
        self._workspace = KernelWorkspace()

    # ------------------------------------------------------------------ #
    # application
    # ------------------------------------------------------------------ #
    def apply(
        self, graph: DiGraph, touched_sources: Iterable[int]
    ) -> MaintenanceReport:
        """Bring the engine up to date with ``graph``.

        ``graph`` is the post-mutation graph (same node count as the index);
        ``touched_sources`` lists every node whose out-edges may have changed
        since the previous application — a conservative superset is fine,
        the column diff filters no-ops.  Typically both come straight from
        :meth:`DynamicGraph.drain`.
        """
        index = self.engine.index
        if graph.n_nodes != index.n_nodes:
            raise ValueError(
                f"graph has {graph.n_nodes} nodes but the index covers "
                f"{index.n_nodes} (dynamic updates are edge-level)"
            )
        params = index.params
        old_hubs = index.hubs
        with Timer() as timer:
            touched = np.unique(np.asarray(list(touched_sources), dtype=np.int64))
            new_transition, changed = rebuild_transition_columns(
                self.engine.transition, graph, touched, weighted=self.weighted
            )
            if self.hub_policy == "reselect":
                new_hubs = self.hub_selector(graph, params)
            else:
                new_hubs = index.hubs
            reselected = new_hubs.nodes != index.hubs.nodes
            if changed.size == 0 and not reselected:
                # Bit-identical transition, same hubs: a fresh build (under
                # this hub set) would reproduce the current index exactly.
                # Nothing to do — and critically no version bump, so cached
                # answers stay live.
                outcome = (0, 0, 0, 0.0, False)
                effective = False
            elif reselected:
                outcome = self._full_rebuild(graph, new_transition, new_hubs)
                effective = True
            else:
                outcome = self._incremental(graph, new_transition, changed, new_hubs)
                effective = True
        invalidated, rematerialized, hub_columns, staleness, rebuilt = outcome
        hub_set_changed = index.hubs.nodes != old_hubs.nodes
        return MaintenanceReport(
            n_touched_sources=int(touched.size),
            n_changed_columns=int(changed.size) if effective else 0,
            n_invalidated=invalidated,
            n_rematerialized=rematerialized,
            n_hub_columns=hub_columns,
            staleness=staleness,
            hub_set_changed=hub_set_changed,
            full_rebuild=rebuilt,
            changed=effective,
            index_version=index.version,
            seconds=timer.elapsed,
        )

    # ------------------------------------------------------------------ #
    # internals
    # ------------------------------------------------------------------ #
    def _full_rebuild(self, graph, transition, hubs):
        """Escape hatch: rebuild everything, splice into the live index.

        A sharded index is rebuilt shard by shard on its own partitioning
        (:func:`~repro.core.sharding.build_sharded_index` — the same states
        a monolithic build would produce, without materialising a monolithic
        ``(K, n)`` columnar matrix first) and adopted in place; the version
        bumps exactly once either way.
        """
        index = self.engine.index
        if isinstance(index, ShardedReverseTopKIndex):
            fresh = build_sharded_index(
                graph,
                index.params,
                hubs=hubs,
                transition=transition,
                n_shards=index.n_shards,
            )
            index.adopt(fresh)
        else:
            fresh = build_index(
                graph, index.params, hubs=hubs, transition=transition
            )
            index.replace_contents(
                hubs=fresh.hubs,
                hub_matrix=fresh.hub_matrix,
                hub_deficit=fresh.hub_deficit,
                states=[state for _, state in fresh.states()],
            )
        self.engine.rebind(transition)
        n_non_hub = index.n_nodes - len(hubs)
        return n_non_hub, 0, len(hubs), 1.0, True

    def _incremental(self, graph, transition, changed, hubs):
        """The delta path: targeted invalidation plus hub re-expansion."""
        index = self.engine.index
        params = index.params
        n = index.n_nodes
        changed_mask = np.zeros(n, dtype=bool)
        changed_mask[changed] = True

        segments = _array_segments(index)
        if segments is not None:
            invalid = _invalid_from_arrays(segments, changed_mask).tolist()
        else:
            invalid = [
                node
                for node, state in index.states()
                if not state.is_hub and _touches(node, state, changed_mask)
            ]
        n_non_hub = max(1, n - len(hubs))
        staleness = len(invalid) / n_non_hub
        if staleness >= self.rebuild_ratio:
            # The rebuild keeps the same hub set: "pinned" means pinned
            # (reselect refreshed it above), so the maintained index is
            # always bit-identical to a from-scratch build under the
            # maintainer's hub configuration — including every answer on
            # floating-point knife-edge ties, which genuinely depend on the
            # hub set's rounding path.
            count, _, hub_columns, _, rebuilt = self._full_rebuild(
                graph, transition, hubs
            )
            return count, 0, hub_columns, staleness, rebuilt

        hub_matrix, hub_deficit, hub_top_k = _compute_hub_matrix(
            transition, hubs, params
        )
        changed_hubs = _changed_hub_columns(index, hubs, hub_matrix, hub_deficit)
        hub_mask = hubs.mask(n)
        kernel = PropagationKernel(
            transition, hub_mask, params, hubs=hubs, hub_matrix=hub_matrix,
            workspace=self._workspace,
        )
        expansion = kernel.expansion

        if segments is not None:
            return self._apply_targeted(
                index, kernel, expansion, segments, invalid, changed_hubs,
                hubs, hub_matrix, hub_deficit, hub_top_k, transition, staleness,
            )

        states = [state for _, state in index.states()]
        for hub in hubs:
            states[hub] = NodeState(
                hub_ink={int(hub): 1.0},
                is_hub=True,
                lower_bounds=hub_top_k[int(hub)].copy(),
            )
        invalid_set = set(invalid)
        # All invalidated nodes are re-refined as one kernel run — with the
        # vectorized backend that is a blocked multi-source rebuild instead
        # of one BCA loop per node.  Per-source bitwise determinism of the
        # kernel keeps the result identical to a from-scratch build.
        for node, fresh in zip(invalid, kernel.run(invalid)):
            states[node] = fresh
        rematerialized = 0
        if changed_hubs:
            for node, state in enumerate(states):
                if state.is_hub or node in invalid_set or not state.hub_ink:
                    continue
                if changed_hubs.intersection(state.hub_ink):
                    # The dicts are still exact; only the hub expansion the
                    # lower bounds were materialized through has moved.
                    materialize_lower_bounds(state, expansion, params.capacity)
                    rematerialized += 1

        index.replace_contents(
            hubs=hubs,
            hub_matrix=hub_matrix,
            hub_deficit=hub_deficit,
            states=states,
        )
        self.engine.rebind(transition)
        return len(invalid), rematerialized, len(hubs), staleness, False

    def _apply_targeted(
        self, index, kernel, expansion, segments, invalid, changed_hubs,
        hubs, hub_matrix, hub_deficit, hub_top_k, transition, staleness,
    ):
        """Array-backed delta apply: rewrite only the affected nodes.

        The object path above materialises every state and hands
        ``replace_contents`` a full list — O(n) Python objects per apply.
        On array-backed indexes (columnar store, array/memmap shards) the
        same invariant holds with targeted writes: invalidated nodes are
        re-refined as one kernel run, hub rows are refreshed against the
        recomputed exact top-K, kept states whose hub ink references a
        changed hub column get their lower bounds re-expanded — and every
        *other* node's stored state, mass and columns are untouched, which
        is exactly what the wholesale path would have recomputed to
        bit-identical values (unchanged residual support, unchanged hub
        deficits on the hubs it references).
        """
        updates: Dict[int, NodeState] = {}
        for hub in hubs:
            updates[int(hub)] = NodeState(
                hub_ink={int(hub): 1.0},
                is_hub=True,
                lower_bounds=hub_top_k[int(hub)].copy(),
            )
        invalid_list = [int(node) for node in invalid]
        for node, fresh in zip(invalid_list, kernel.run(invalid_list)):
            updates[node] = fresh

        rematerialized = 0
        if changed_hubs:
            n = index.n_nodes
            changed_hub_mask = np.zeros(n, dtype=bool)
            changed_hub_mask[np.asarray(sorted(changed_hubs), dtype=np.int64)] = True
            hit = _plane_hits(segments, "hub_ink", changed_hub_mask)
            for node in np.flatnonzero(hit).tolist():
                if node in updates:
                    continue
                # The dicts are still exact; only the hub expansion the
                # lower bounds were materialized through has moved.
                state = index.state(node)
                materialize_lower_bounds(state, expansion, index.params.capacity)
                updates[node] = state
                rematerialized += 1

        index.apply_updates(
            updates, hub_matrix=hub_matrix, hub_deficit=hub_deficit
        )
        self.engine.rebind(transition)
        return len(invalid_list), rematerialized, len(hubs), staleness, False


def _array_segments(index):
    """``(start, arrays, overlay)`` per contiguous range, or ``None``.

    ``None`` means the index stores plain object lists somewhere and the
    maintainer must walk states the object way.  Memmap shards open their
    state arrays lazily here — a sequential read over the flat key arrays,
    not a per-node materialisation.
    """
    if isinstance(index, ShardedReverseTopKIndex):
        segments = []
        for shard in index.shards:
            if shard._states is not None:
                return None
            segments.append(
                (shard.start, shard._ensure_state_arrays(), shard._overlay)
            )
        return segments
    store = getattr(index, "store", None)
    if store is None:
        return None
    return [(0, store.arrays, store.overlay)]


def _plane_hits(segments, plane: str, key_mask: np.ndarray) -> np.ndarray:
    """Nodes (global ids, as a bool mask) whose ``plane`` support hits the mask.

    Vectorised per segment: flag every stored key against ``key_mask``, then
    reduce per row with ``bitwise_or.reduceat`` over the non-empty rows (the
    entries between consecutive non-empty row starts belong exactly to the
    first — empty rows contribute none).  Overlaid states are checked as
    objects; they supersede their array rows.
    """
    n = key_mask.size
    hit = np.zeros(n, dtype=bool)
    for start, arrays, overlay in segments:
        m = int(arrays["is_hub"].shape[0])
        keys = np.asarray(arrays[f"{plane}_keys"])
        indptr = np.asarray(arrays[f"{plane}_indptr"])
        row_hit = np.zeros(m, dtype=bool)
        if keys.size:
            flags = key_mask[keys]
            counts = np.diff(indptr)
            nonempty = counts > 0
            if np.any(nonempty):
                row_hit[nonempty] = np.bitwise_or.reduceat(
                    flags, indptr[:-1][nonempty]
                )
        row_hit &= ~np.asarray(arrays["is_hub"], dtype=bool)
        for local, state in overlay.items():
            row_hit[local] = (not state.is_hub) and any(
                key_mask[int(key)] for key in getattr(state, plane)
            )
        hit[start : start + m] = row_hit
    return hit


def _invalid_from_arrays(segments, changed_mask: np.ndarray) -> np.ndarray:
    """Vectorised :func:`_touches` over flattened state arrays.

    A non-hub node is invalid when its retained or residual support — or
    the node itself — touches a changed transition column.
    """
    hit = (
        _plane_hits(segments, "retained", changed_mask)
        | _plane_hits(segments, "residual", changed_mask)
    )
    for start, arrays, overlay in segments:
        m = int(arrays["is_hub"].shape[0])
        own = changed_mask[start : start + m] & ~np.asarray(
            arrays["is_hub"], dtype=bool
        )
        hit[start : start + m] |= own
        for local, state in overlay.items():
            hit[start + local] = (not state.is_hub) and _touches(
                start + local, state, changed_mask
            )
    return np.flatnonzero(hit)


def _touches(node: int, state: NodeState, changed_mask: np.ndarray) -> bool:
    """Conservative test: did this state's trajectory read a changed column?

    Every node that ever propagated ink appears in ``retained`` (it keeps an
    ``alpha`` share), so the retained support covers all columns read.  The
    residual support and the node itself are included as an extra margin —
    they cost nothing and keep the test obviously safe for hand-constructed
    states.
    """
    if changed_mask[node]:
        return True
    for key in state.retained:
        if changed_mask[key]:
            return True
    for key in state.residual:
        if changed_mask[key]:
            return True
    return False


def _changed_hub_columns(
    index, hubs: HubSet, hub_matrix, hub_deficit: np.ndarray
) -> Set[int]:
    """Hub ids whose rounded proximity column (or deficit) actually moved.

    Kept states whose hub ink only references unchanged hubs keep their
    lower bounds verbatim — re-expanding them against bit-identical columns
    would reproduce the same values at full cost.
    """
    old_matrix = index.hub_matrix
    changed: Set[int] = set()
    for position, hub in enumerate(hubs):
        if float(hub_deficit[position]) != float(index.hub_deficit[position]):
            changed.add(int(hub))
            continue
        old_start, old_stop = (
            old_matrix.indptr[position],
            old_matrix.indptr[position + 1],
        )
        start, stop = hub_matrix.indptr[position], hub_matrix.indptr[position + 1]
        if (
            stop - start != old_stop - old_start
            or not np.array_equal(
                hub_matrix.indices[start:stop],
                old_matrix.indices[old_start:old_stop],
            )
            or not np.array_equal(
                hub_matrix.data[start:stop], old_matrix.data[old_start:old_stop]
            )
        ):
            changed.add(int(hub))
    return changed
