"""Dynamic-graph subsystem: incremental updates with index delta-maintenance.

The paper builds its reverse top-k index once over a static graph; real
proximity graphs (co-authorship, recommendation, spam links — the §6
applications) churn continuously.  This package keeps a built index — and a
live serving façade on top of it — consistent with a stream of edge
mutations at a fraction of rebuild cost:

``graph``
    :class:`DynamicGraph` — a delta overlay buffering insertions, deletions
    and weight changes over the immutable CSR, with periodic compaction;
    :class:`GraphUpdate` describes one mutation.
``maintainer``
    :class:`IndexMaintainer` — recomputes only the affected transition
    columns, conservatively invalidates the BCA states whose trajectories
    read them, re-expands hub-dependent lower bounds, and escalates to a
    full rebuild past a staleness threshold.  The maintained index stays
    bit-identical to a from-scratch build on the current graph.
``service``
    :class:`DynamicReverseTopKService` — applies update batches under the
    serving write lock, retiring exactly one cache generation per effective
    batch and re-archiving warm-start snapshots under the new graph's
    content key.
"""

from .graph import DynamicGraph, GraphUpdate, UPDATE_OPS
from .maintainer import (
    DEFAULT_REBUILD_RATIO,
    HUB_POLICIES,
    IndexMaintainer,
    MaintenanceReport,
)
from .service import DynamicReverseTopKService, UpdateMetrics

__all__ = [
    "DEFAULT_REBUILD_RATIO",
    "HUB_POLICIES",
    "DynamicGraph",
    "DynamicReverseTopKService",
    "GraphUpdate",
    "IndexMaintainer",
    "MaintenanceReport",
    "UPDATE_OPS",
    "UpdateMetrics",
]
