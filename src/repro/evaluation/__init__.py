"""Experiment harness reproducing the paper's tables and figures.

``experiments`` holds one function per table/figure of the evaluation section;
``metrics`` and ``tables`` provide the shared measurement and formatting
helpers.  The :mod:`benchmarks` directory at the repository root wraps these
functions with ``pytest-benchmark`` so each experiment can be re-run with
``pytest benchmarks/ --benchmark-only``.
"""

from .experiments import (
    ExperimentResult,
    table2_index_construction,
    figure5_query_time,
    figure6_pruning_power,
    figure7_refinement_effect,
    figure8_cumulative_cost,
    figure9_rounding_effect,
    table3_author_popularity,
    spam_detection_stats,
)
from .metrics import jaccard_similarity, precision_at_k, result_overlap
from .tables import format_table, format_series

__all__ = [
    "jaccard_similarity",
    "precision_at_k",
    "result_overlap",
    "format_table",
    "format_series",
    "ExperimentResult",
    "table2_index_construction",
    "figure5_query_time",
    "figure6_pruning_power",
    "figure7_refinement_effect",
    "figure8_cumulative_cost",
    "figure9_rounding_effect",
    "table3_author_popularity",
    "spam_detection_stats",
]
