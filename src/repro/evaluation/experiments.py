"""One function per table / figure of the paper's evaluation section.

Every function takes a graph (typically one of the scaled-down dataset
stand-ins of :mod:`repro.graph.datasets`), runs the corresponding experiment,
and returns an :class:`ExperimentResult` bundling the raw measurements with a
pre-formatted text table matching the paper's presentation.  The functions are
deliberately small-graph-friendly so the pytest benchmarks can call them with
tight budgets; pass larger graphs / workloads to approach the paper's scale.

| Function | Paper artefact |
|---|---|
| :func:`table2_index_construction` | Table 2 — index construction time & space |
| :func:`figure5_query_time` | Figure 5 — query time vs. k, update/no-update |
| :func:`figure6_pruning_power` | Figure 6 — candidates / hits / results vs. k |
| :func:`figure7_refinement_effect` | Figure 7 — per-query cost over a workload |
| :func:`figure8_cumulative_cost` | Figure 8 — cumulative cost vs. IBF / FBF |
| :func:`figure9_rounding_effect` | Figure 9 — result similarity vs. omega |
| :func:`table3_author_popularity` | Table 3 — longest reverse top-5 lists |
| :func:`spam_detection_stats` | §5.4 spam detection percentages |
"""

from __future__ import annotations

import copy
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence

import numpy as np

from ..apps.coauthor import AuthorPopularityAnalyzer
from ..apps.spam import SpamDetector
from ..core.baseline import FeasibleBruteForce, InfeasibleBruteForce
from ..core.config import IndexParams
from ..core.estimates import DEFAULT_BETA, predicted_index_bytes
from ..core.hubs import select_hubs_by_degree
from ..core.lbi import build_index
from ..core.query import ReverseTopKEngine
from ..graph.digraph import DiGraph
from ..graph.transition import transition_matrix
from ..utils.timer import Timer
from ..workloads.queries import QueryWorkload, all_nodes_workload, uniform_query_workload
from .metrics import jaccard_similarity
from .tables import format_series, format_table


@dataclass
class ExperimentResult:
    """Raw measurements plus a formatted rendering of one experiment.

    Attributes
    ----------
    name:
        Experiment identifier ("table2", "figure5", ...).
    data:
        Raw measurement structure (shape differs per experiment; documented in
        each experiment function).
    text:
        Pre-formatted table ready to print, in the layout of the paper.
    """

    name: str
    data: Dict[str, Any] = field(default_factory=dict)
    text: str = ""

    def __str__(self) -> str:
        return self.text


# --------------------------------------------------------------------------- #
# Table 2 — index construction time and space
# --------------------------------------------------------------------------- #
def table2_index_construction(
    graph: DiGraph,
    *,
    hub_budgets: Sequence[int] = (10, 25, 50, 100),
    params: Optional[IndexParams] = None,
    graph_name: str = "graph",
    include_brute_force: bool = True,
    beta: float = DEFAULT_BETA,
) -> ExperimentResult:
    """Table 2: index construction time / size for several hub budgets ``B``.

    ``data`` layout::

        {"rows": [{"B", "n_hubs", "seconds", "actual_bytes",
                   "no_rounding_bytes", "predicted_bytes"}, ...],
         "brute_force": {"seconds", "bytes"} | None}
    """
    matrix = transition_matrix(graph)
    base = params if params is not None else IndexParams()
    base = base.for_graph(graph.n_nodes)

    rows: List[Dict[str, float]] = []
    for budget in hub_budgets:
        budget_params = _with(base, hub_budget=int(budget))
        hubs = select_hubs_by_degree(graph, budget_params.hub_budget)
        timer = Timer()
        with timer:
            index = build_index(graph, budget_params, transition=matrix, hubs=hubs)
        no_rounding_params = _with(budget_params, rounding_threshold=0.0)
        no_rounding_index = build_index(
            graph, no_rounding_params, transition=matrix, hubs=hubs
        )
        rows.append(
            {
                "B": int(budget),
                "n_hubs": len(hubs),
                "seconds": timer.elapsed,
                "actual_bytes": index.total_bytes(),
                "no_rounding_bytes": no_rounding_index.total_bytes(),
                "predicted_bytes": predicted_index_bytes(
                    graph.n_nodes,
                    budget_params.capacity,
                    len(hubs),
                    max(budget_params.rounding_threshold, 1e-12),
                    beta=beta,
                ),
            }
        )

    brute: Optional[Dict[str, float]] = None
    if include_brute_force:
        timer = Timer()
        with timer:
            baseline = InfeasibleBruteForce(matrix, base.capacity)
        brute = {"seconds": timer.elapsed, "bytes": float(baseline.storage_bytes())}

    headers = ["B", "|H|", "time (s)", "no rounding (KB)", "actual (KB)", "predicted (KB)"]
    table_rows = [
        [
            row["B"],
            row["n_hubs"],
            row["seconds"],
            row["no_rounding_bytes"] / 1024.0,
            row["actual_bytes"] / 1024.0,
            row["predicted_bytes"] / 1024.0,
        ]
        for row in rows
    ]
    title = f"Table 2 — {graph_name} (|V|={graph.n_nodes}, |E|={graph.n_edges})"
    text = format_table(headers, table_rows, title=title)
    if brute is not None:
        text += (
            f"\nfull P (brute force): {brute['seconds']:.3f} s, "
            f"{brute['bytes'] / 1024.0:.1f} KB"
        )
    return ExperimentResult("table2", {"rows": rows, "brute_force": brute}, text)


# --------------------------------------------------------------------------- #
# Figure 5 — query time vs k, update vs no-update
# --------------------------------------------------------------------------- #
def figure5_query_time(
    graph: DiGraph,
    *,
    k_values: Sequence[int] = (5, 10, 20, 50, 100),
    n_queries: int = 50,
    params: Optional[IndexParams] = None,
    seed: int = 0,
    graph_name: str = "graph",
) -> ExperimentResult:
    """Figure 5: average reverse top-k query time vs. ``k``, update vs. no-update.

    ``data`` layout::

        {"k": [...], "update_seconds": [...], "no_update_seconds": [...]}
    """
    matrix = transition_matrix(graph)
    base = (params if params is not None else IndexParams()).for_graph(graph.n_nodes)
    k_values = [k for k in k_values if k <= base.capacity and k <= graph.n_nodes]
    workload = uniform_query_workload(graph, n_queries, seed=seed)
    reference_index = build_index(graph, base, transition=matrix)

    update_seconds: List[float] = []
    no_update_seconds: List[float] = []
    for k in k_values:
        for update, bucket in ((True, update_seconds), (False, no_update_seconds)):
            engine = ReverseTopKEngine(matrix, copy.deepcopy(reference_index))
            results = engine.query_many(list(workload), k, update_index=update)
            bucket.append(float(np.mean([r.statistics.seconds for r in results])))

    data = {
        "k": list(k_values),
        "update_seconds": update_seconds,
        "no_update_seconds": no_update_seconds,
    }
    text = format_series(
        "k",
        {"update (s)": update_seconds, "no-update (s)": no_update_seconds},
        list(k_values),
        title=f"Figure 5 — average query time, {graph_name}",
    )
    return ExperimentResult("figure5", data, text)


# --------------------------------------------------------------------------- #
# Figure 6 — pruning power: candidates, hits, results
# --------------------------------------------------------------------------- #
def figure6_pruning_power(
    graph: DiGraph,
    *,
    k_values: Sequence[int] = (5, 10, 20, 50, 100),
    n_queries: int = 50,
    params: Optional[IndexParams] = None,
    seed: int = 0,
    graph_name: str = "graph",
) -> ExperimentResult:
    """Figure 6: average candidates / immediate hits / results per query vs. ``k``.

    ``data`` layout::

        {"k": [...], "candidates": [...], "hits": [...], "results": [...]}
    """
    matrix = transition_matrix(graph)
    base = (params if params is not None else IndexParams()).for_graph(graph.n_nodes)
    k_values = [k for k in k_values if k <= base.capacity and k <= graph.n_nodes]
    workload = uniform_query_workload(graph, n_queries, seed=seed)
    reference_index = build_index(graph, base, transition=matrix)

    candidates: List[float] = []
    hits: List[float] = []
    results: List[float] = []
    for k in k_values:
        engine = ReverseTopKEngine(matrix, copy.deepcopy(reference_index))
        stats = [r.statistics for r in engine.query_many(list(workload), k, update_index=True)]
        candidates.append(float(np.mean([s.n_candidates for s in stats])))
        hits.append(float(np.mean([s.n_hits for s in stats])))
        results.append(float(np.mean([s.n_results for s in stats])))

    data = {"k": list(k_values), "candidates": candidates, "hits": hits, "results": results}
    text = format_series(
        "k",
        {"cand": candidates, "hits": hits, "result": results},
        list(k_values),
        title=f"Figure 6 — pruning power, {graph_name}",
    )
    return ExperimentResult("figure6", data, text)


# --------------------------------------------------------------------------- #
# Figure 7 — effect of index refinement across a query sequence
# --------------------------------------------------------------------------- #
def figure7_refinement_effect(
    graph: DiGraph,
    *,
    k: int = 20,
    n_queries: int = 100,
    params: Optional[IndexParams] = None,
    seed: int = 0,
    graph_name: str = "graph",
) -> ExperimentResult:
    """Figure 7: per-query cost across a workload, with and without index updates.

    ``data`` layout::

        {"query_id": [...], "update_seconds": [...], "no_update_seconds": [...],
         "update_refinements": [...], "no_update_refinements": [...]}
    """
    matrix = transition_matrix(graph)
    base = (params if params is not None else IndexParams()).for_graph(graph.n_nodes)
    k = min(k, base.capacity, graph.n_nodes)
    workload = uniform_query_workload(graph, n_queries, seed=seed)
    reference_index = build_index(graph, base, transition=matrix)

    series: Dict[str, List[float]] = {
        "update_seconds": [],
        "no_update_seconds": [],
        "update_refinements": [],
        "no_update_refinements": [],
    }
    for update in (True, False):
        engine = ReverseTopKEngine(matrix, copy.deepcopy(reference_index))
        prefix = "update" if update else "no_update"
        for result in engine.query_many(list(workload), k, update_index=update):
            stats = result.statistics
            series[f"{prefix}_seconds"].append(stats.seconds)
            series[f"{prefix}_refinements"].append(float(stats.n_refinement_iterations))

    data = {"query_id": list(range(len(workload))), **series}
    # Summarise in quartiles of the sequence so the refinement trend is visible
    # in text form (the paper plots the full sequence).
    quarters = max(1, len(workload) // 4)
    rows = []
    for start in range(0, len(workload), quarters):
        stop = min(start + quarters, len(workload))
        rows.append(
            [
                f"{start}-{stop - 1}",
                float(np.mean(series["update_seconds"][start:stop])),
                float(np.mean(series["no_update_seconds"][start:stop])),
                float(np.mean(series["update_refinements"][start:stop])),
                float(np.mean(series["no_update_refinements"][start:stop])),
            ]
        )
    text = format_table(
        ["queries", "update (s)", "no-update (s)", "update refits", "no-update refits"],
        rows,
        title=f"Figure 7 — refinement effect, {graph_name} (k={k})",
    )
    return ExperimentResult("figure7", data, text)


# --------------------------------------------------------------------------- #
# Figure 8 — cumulative workload cost vs IBF / FBF
# --------------------------------------------------------------------------- #
def figure8_cumulative_cost(
    graph: DiGraph,
    *,
    k: int = 10,
    params: Optional[IndexParams] = None,
    workload: Optional[QueryWorkload] = None,
    graph_name: str = "graph",
) -> ExperimentResult:
    """Figure 8: cumulative cost of our method vs. IBF and FBF over a workload.

    ``data`` layout::

        {"n_queries": [...],
         "ours": [...], "ibf": [...], "fbf": [...],          # cumulative seconds
         "offline": {"ours", "ibf", "fbf"}}
    """
    matrix = transition_matrix(graph)
    base = (params if params is not None else IndexParams()).for_graph(graph.n_nodes)
    k = min(k, base.capacity, graph.n_nodes)
    if workload is None:
        workload = all_nodes_workload(graph, k=k)

    timer = Timer()
    with timer:
        index = build_index(graph, base, transition=matrix)
    ours_offline = timer.elapsed
    engine = ReverseTopKEngine(matrix, index)

    ibf = InfeasibleBruteForce(matrix, base.capacity)
    fbf = FeasibleBruteForce(matrix, base.capacity)

    ours_cumulative: List[float] = []
    ibf_cumulative: List[float] = []
    fbf_cumulative: List[float] = []
    ours_total, ibf_total, fbf_total = ours_offline, ibf.offline_seconds, fbf.offline_seconds
    for query in workload:
        ours_total += engine.query(query, k, update_index=True).statistics.seconds
        with Timer() as ibf_timer:
            ibf.query(query, k)
        ibf_total += ibf_timer.elapsed
        with Timer() as fbf_timer:
            fbf.query(query, k)
        fbf_total += fbf_timer.elapsed
        ours_cumulative.append(ours_total)
        ibf_cumulative.append(ibf_total)
        fbf_cumulative.append(fbf_total)

    data = {
        "n_queries": list(range(1, len(workload) + 1)),
        "ours": ours_cumulative,
        "ibf": ibf_cumulative,
        "fbf": fbf_cumulative,
        "offline": {"ours": ours_offline, "ibf": ibf.offline_seconds, "fbf": fbf.offline_seconds},
    }
    checkpoints = sorted(
        {max(1, len(workload) // 10), len(workload) // 4, len(workload) // 2, len(workload)}
    )
    rows = [
        [
            count,
            ours_cumulative[count - 1],
            ibf_cumulative[count - 1],
            fbf_cumulative[count - 1],
        ]
        for count in checkpoints
        if count >= 1
    ]
    text = format_table(
        ["#queries", "ours (s)", "IBF (s)", "FBF (s)"],
        rows,
        title=f"Figure 8 — cumulative workload cost, {graph_name} (k={k})",
    )
    return ExperimentResult("figure8", data, text)


# --------------------------------------------------------------------------- #
# Figure 9 — effect of hub rounding on result quality
# --------------------------------------------------------------------------- #
def figure9_rounding_effect(
    graph: DiGraph,
    *,
    k_values: Sequence[int] = (5, 10, 20, 50, 100),
    rounding_thresholds: Sequence[float] = (1e-4, 1e-5, 1e-6),
    n_queries: int = 30,
    params: Optional[IndexParams] = None,
    seed: int = 0,
    graph_name: str = "graph",
) -> ExperimentResult:
    """Figure 9: Jaccard similarity between rounded-index and exact-index results.

    ``data`` layout::

        {"k": [...], "omega": [...],
         "similarity": {omega: [similarity per k]}}
    """
    matrix = transition_matrix(graph)
    base = (params if params is not None else IndexParams()).for_graph(graph.n_nodes)
    k_values = [k for k in k_values if k <= base.capacity and k <= graph.n_nodes]
    workload = uniform_query_workload(graph, n_queries, seed=seed)

    exact_params = _with(base, rounding_threshold=0.0)
    exact_index = build_index(graph, exact_params, transition=matrix)

    similarity: Dict[float, List[float]] = {}
    for omega in rounding_thresholds:
        rounded_index = build_index(
            graph, _with(base, rounding_threshold=float(omega)), transition=matrix
        )
        per_k: List[float] = []
        for k in k_values:
            exact_engine = ReverseTopKEngine(matrix, copy.deepcopy(exact_index))
            rounded_engine = ReverseTopKEngine(matrix, copy.deepcopy(rounded_index))
            values = [
                jaccard_similarity(exact_result.nodes, rounded_result.nodes)
                for exact_result, rounded_result in zip(
                    exact_engine.query_many(list(workload), k),
                    rounded_engine.query_many(list(workload), k),
                )
            ]
            per_k.append(float(np.mean(values)))
        similarity[float(omega)] = per_k

    data = {"k": list(k_values), "omega": [float(w) for w in rounding_thresholds], "similarity": similarity}
    text = format_series(
        "k",
        {f"omega={omega:g}": values for omega, values in similarity.items()},
        list(k_values),
        title=f"Figure 9 — rounding effect on result similarity, {graph_name}",
    )
    return ExperimentResult("figure9", data, text)


# --------------------------------------------------------------------------- #
# Table 3 — author popularity in a co-authorship network
# --------------------------------------------------------------------------- #
def table3_author_popularity(
    graph: DiGraph,
    *,
    k: int = 5,
    top: int = 10,
    params: Optional[IndexParams] = None,
    graph_name: str = "coauthorship",
) -> ExperimentResult:
    """Table 3: the authors with the longest reverse top-k lists vs. their degree.

    ``data`` layout::

        {"rows": [{"author", "name", "reverse_top_k_size", "n_coauthors"}, ...]}
    """
    analyzer = AuthorPopularityAnalyzer(graph, k=k, params=params)
    ranking = analyzer.ranking(top=top)
    rows = [
        {
            "author": record.author,
            "name": record.name,
            "reverse_top_k_size": record.reverse_top_k_size,
            "n_coauthors": record.n_coauthors,
        }
        for record in ranking
    ]
    text = format_table(
        ["author", f"reverse top-{k} size", "# coauthors"],
        [[row["name"], row["reverse_top_k_size"], row["n_coauthors"]] for row in rows],
        title=f"Table 3 — longest reverse top-{k} lists, {graph_name}",
    )
    return ExperimentResult("table3", {"rows": rows}, text)


# --------------------------------------------------------------------------- #
# Section 5.4 — spam detection statistics
# --------------------------------------------------------------------------- #
def spam_detection_stats(
    graph: DiGraph,
    labels: np.ndarray,
    *,
    k: int = 5,
    max_queries_per_class: Optional[int] = 100,
    params: Optional[IndexParams] = None,
    graph_name: str = "webspam",
) -> ExperimentResult:
    """Section 5.4: spam composition of reverse top-k sets of spam vs. normal hosts.

    ``data`` layout::

        {"mean_spam_ratio_for_spam", "mean_spam_ratio_for_normal",
         "spam_queries", "normal_queries", "k"}
    """
    detector = SpamDetector(graph, labels, k=k, params=params)
    report = detector.evaluate(max_queries_per_class=max_queries_per_class)
    data = {
        "k": report.k,
        "spam_queries": report.spam_queries,
        "normal_queries": report.normal_queries,
        "mean_spam_ratio_for_spam": report.mean_spam_ratio_for_spam,
        "mean_spam_ratio_for_normal": report.mean_spam_ratio_for_normal,
    }
    text = format_table(
        ["query class", "#queries", "mean spam ratio in reverse top-k"],
        [
            ["spam", report.spam_queries, report.mean_spam_ratio_for_spam],
            ["normal", report.normal_queries, report.mean_spam_ratio_for_normal],
        ],
        title=f"Section 5.4 — spam detection, {graph_name} (k={k})",
    )
    return ExperimentResult("spam", data, text)


def _with(params: IndexParams, **overrides: object) -> IndexParams:
    """Return a copy of ``params`` with the given fields replaced."""
    import dataclasses

    return dataclasses.replace(params, **overrides)
