"""Plain-text table / series formatting for benchmark and experiment output.

The benchmarks print the same rows and series the paper reports; these
helpers keep the formatting consistent (fixed-width columns, aligned headers)
without pulling in plotting dependencies.
"""

from __future__ import annotations

from typing import Any, Mapping, Sequence


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[Any]],
    *,
    title: str | None = None,
    float_format: str = "{:.4g}",
) -> str:
    """Render rows as a fixed-width text table."""
    rendered_rows = [
        [_render_cell(cell, float_format) for cell in row] for row in rows
    ]
    widths = [len(str(header)) for header in headers]
    for row in rendered_rows:
        for column, cell in enumerate(row):
            if column < len(widths):
                widths[column] = max(widths[column], len(cell))
            else:
                widths.append(len(cell))
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(str(h).ljust(widths[i]) for i, h in enumerate(headers)))
    lines.append("  ".join("-" * widths[i] for i in range(len(headers))))
    for row in rendered_rows:
        lines.append("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines)


def format_series(
    x_label: str,
    series: Mapping[str, Sequence[float]],
    x_values: Sequence[Any],
    *,
    title: str | None = None,
    float_format: str = "{:.4g}",
) -> str:
    """Render one or more named series over a shared x-axis as a table.

    Mirrors how the paper's figures are tabulated in EXPERIMENTS.md: one row
    per x value, one column per series.
    """
    headers = [x_label, *series.keys()]
    rows = []
    for position, x in enumerate(x_values):
        row = [x]
        for values in series.values():
            row.append(values[position] if position < len(values) else "")
        rows.append(row)
    return format_table(headers, rows, title=title, float_format=float_format)


def _render_cell(cell: Any, float_format: str) -> str:
    if isinstance(cell, bool):
        return str(cell)
    if isinstance(cell, float):
        return float_format.format(cell)
    return str(cell)
