"""Result-quality metrics used by the evaluation harness (Figure 9, tests)."""

from __future__ import annotations

from typing import Iterable, Sequence, Set

import numpy as np


def _as_set(values: Iterable[int]) -> Set[int]:
    return {int(v) for v in np.asarray(list(values)).ravel()} if values is not None else set()


def jaccard_similarity(first: Iterable[int], second: Iterable[int]) -> float:
    """Jaccard similarity ``|A ∩ B| / |A ∪ B|`` between two result sets.

    Two empty sets are defined to be identical (similarity 1), matching the
    convention used for Figure 9 where some queries have empty answers.
    """
    a, b = _as_set(first), _as_set(second)
    if not a and not b:
        return 1.0
    return len(a & b) / len(a | b)


def result_overlap(first: Iterable[int], second: Iterable[int]) -> float:
    """Fraction of the first set that also appears in the second (recall of A in B)."""
    a, b = _as_set(first), _as_set(second)
    if not a:
        return 1.0
    return len(a & b) / len(a)


def precision_at_k(predicted: Sequence[int], relevant: Iterable[int], k: int) -> float:
    """Precision of the first ``k`` predictions against a relevant set."""
    if k <= 0:
        raise ValueError("k must be positive")
    relevant_set = _as_set(relevant)
    top = [int(p) for p in list(predicted)[:k]]
    if not top:
        return 0.0
    return sum(1 for p in top if p in relevant_set) / len(top)


def mean_and_std(values: Sequence[float]) -> tuple[float, float]:
    """Mean and standard deviation, robust to empty input."""
    array = np.asarray(list(values), dtype=np.float64)
    if array.size == 0:
        return 0.0, 0.0
    return float(array.mean()), float(array.std())
