"""repro — Reverse top-k proximity search on graphs with Random Walk with Restart.

A from-scratch reproduction of *"Reverse Top-k Search using Random Walk with
Restart"* (Yu, Mamoulis, Su; PVLDB 7(5), 2014).

The package is organised in layers:

* :mod:`repro.graph` — graph substrate (directed graphs, transition matrices,
  generators, dataset stand-ins, I/O);
* :mod:`repro.rwr` — RWR proximity primitives (power method, direct solvers,
  classic BCA, Monte Carlo, PageRank);
* :mod:`repro.core` — the paper's contribution (lower-bound index, PMPN,
  staircase upper bounds, online query engine, brute-force baselines);
* :mod:`repro.topk` — top-k RWR search baselines from related work;
* :mod:`repro.apps` — applications: spam detection, author popularity,
  product influence;
* :mod:`repro.workloads`, :mod:`repro.evaluation` — workload generators and
  the experiment harness that regenerates the paper's tables and figures;
* :mod:`repro.serving` — the serving runtime: result caching, request
  batching/dedup, thread/process parallel execution, and warm-start index
  snapshots behind the :class:`ReverseTopKService` façade;
* :mod:`repro.dynamic` — the dynamic-graph subsystem: a delta overlay over
  the immutable CSR, incremental index maintenance with conservative state
  invalidation, and the :class:`DynamicReverseTopKService` update path.

Quickstart
----------
>>> from repro import ReverseTopKEngine
>>> from repro.graph import copying_web_graph
>>> graph = copying_web_graph(500, seed=7)
>>> engine = ReverseTopKEngine.build(graph)
>>> result = engine.query(42, k=10)
>>> sorted(result.nodes)[:3]  # doctest: +SKIP
[3, 17, 42]
"""

from .core import (
    ColumnarView,
    IndexParams,
    QueryParams,
    ReverseTopKEngine,
    ReverseTopKIndex,
    QueryResult,
    QueryStatistics,
    build_index,
    build_index_parallel,
    build_sharded_index,
    ShardedReverseTopKEngine,
    ShardedReverseTopKIndex,
    BuildReport,
    PropagationKernel,
    kth_upper_bounds_batch,
    proximity_to_node,
    brute_force_reverse_topk,
)
from .dynamic import (
    DynamicGraph,
    DynamicReverseTopKService,
    GraphUpdate,
    IndexMaintainer,
    MaintenanceReport,
)
from .exceptions import (
    ReproError,
    GraphError,
    ConvergenceError,
    InvalidParameterError,
    QueryError,
)
from .graph import DiGraph, transition_matrix, weighted_transition_matrix
from .serving import (
    ReverseTopKService,
    ServiceConfig,
    ServiceMetrics,
    SnapshotManager,
)

__version__ = "1.0.0"

__all__ = [
    "ColumnarView",
    "IndexParams",
    "QueryParams",
    "ReverseTopKEngine",
    "ReverseTopKIndex",
    "QueryResult",
    "QueryStatistics",
    "build_index",
    "build_index_parallel",
    "build_sharded_index",
    "ShardedReverseTopKEngine",
    "ShardedReverseTopKIndex",
    "BuildReport",
    "PropagationKernel",
    "kth_upper_bounds_batch",
    "proximity_to_node",
    "brute_force_reverse_topk",
    "DiGraph",
    "transition_matrix",
    "weighted_transition_matrix",
    "ReverseTopKService",
    "ServiceConfig",
    "ServiceMetrics",
    "SnapshotManager",
    "DynamicGraph",
    "DynamicReverseTopKService",
    "GraphUpdate",
    "IndexMaintainer",
    "MaintenanceReport",
    "ReproError",
    "GraphError",
    "ConvergenceError",
    "InvalidParameterError",
    "QueryError",
    "__version__",
]
