"""Product influence analysis on co-purchase graphs (Section 1 motivation).

"In a product co-purchase graph, a reverse top-k query of a product q can
identify which products influence the buying of q.  One can leverage this
information to promote q in future transactions."  This module turns that
sentence into a small API: given a co-purchase graph, find the influencers of
a product and suggest cross-promotion bundles.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from .._validation import check_k, check_node_index
from ..core.config import IndexParams
from ..core.query import ReverseTopKEngine
from ..graph.digraph import DiGraph
from ..graph.transition import transition_matrix


@dataclass(frozen=True)
class ProductInfluence:
    """Influence record for a product.

    Attributes
    ----------
    product:
        The analysed product (query node).
    influencers:
        Products that have the query in their top-k proximity sets, ordered by
        their proximity to the query (strongest influence first).
    proximities:
        The proximity of each influencer to the product, aligned with
        ``influencers``.
    """

    product: int
    influencers: np.ndarray
    proximities: np.ndarray

    def top(self, count: int) -> List[int]:
        """The ``count`` strongest influencers."""
        return [int(node) for node in self.influencers[: max(0, int(count))]]


class ProductInfluenceAnalyzer:
    """Find which products drive the purchase of a given product.

    Parameters
    ----------
    graph:
        Directed co-purchase graph ("customers who bought i also bought j").
    k:
        Reverse top-k depth.
    params:
        Index construction parameters.
    """

    def __init__(
        self,
        graph: DiGraph,
        *,
        k: int = 10,
        params: Optional[IndexParams] = None,
    ) -> None:
        self.graph = graph
        self.k = check_k(k, graph.n_nodes)
        matrix = transition_matrix(graph)
        self.engine = ReverseTopKEngine.build(graph, params, transition=matrix)

    def influencers(self, product: int) -> ProductInfluence:
        """Reverse top-k influencers of ``product``, strongest first."""
        product = check_node_index(product, self.graph.n_nodes, "product")
        result = self.engine.query(product, self.k)
        ranked = result.ranked()
        nodes = np.asarray([node for node, _ in ranked], dtype=np.int64)
        values = np.asarray([value for _, value in ranked], dtype=np.float64)
        return ProductInfluence(product=product, influencers=nodes, proximities=values)

    def promotion_bundle(self, product: int, size: int = 3) -> List[int]:
        """Suggest products to bundle with ``product`` to promote it.

        The bundle consists of the strongest influencers excluding the
        product itself.
        """
        record = self.influencers(product)
        bundle = [node for node in record.top(size + 1) if node != product]
        return bundle[: max(0, int(size))]

    def influence_scores(self, products: Sequence[int]) -> dict[int, int]:
        """Reverse top-k list size per product — a simple influence leaderboard."""
        return {
            int(product): len(self.engine.query(int(product), self.k).nodes)
            for product in products
        }
