"""Applications of reverse top-k RWR search (Section 1 and Section 5.4).

Three applications from the paper are packaged as reusable classes:

* :mod:`spam` — web-spam detection: the reverse top-k set of a spam host is
  dominated by other spam hosts (its link farm);
* :mod:`coauthor` — author popularity in a co-authorship network: the size of
  an author's reverse top-k list measures how many researchers consider the
  author one of their closest collaborators (Table 3);
* :mod:`recommendation` — product influence in a co-purchase graph: the
  reverse top-k set of a product identifies the products that drive its
  purchases.
"""

from .coauthor import AuthorPopularityAnalyzer, AuthorPopularity
from .recommendation import ProductInfluenceAnalyzer, ProductInfluence
from .spam import SpamDetector, SpamDetectionReport

__all__ = [
    "SpamDetector",
    "SpamDetectionReport",
    "AuthorPopularityAnalyzer",
    "AuthorPopularity",
    "ProductInfluenceAnalyzer",
    "ProductInfluence",
]
