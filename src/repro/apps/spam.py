"""Web-spam detection with reverse top-k RWR queries (Section 5.4).

The intuition: spam hosts are boosted by link farms, i.e. sets of pages whose
main purpose is to channel their PageRank contribution into the target.  A
reverse top-k query on a suspected host returns exactly the hosts that give
the query one of their top-k PageRank contributions — for a spam host these
are overwhelmingly other spam hosts.  The paper reports that 96.1% of the
reverse top-5 set of a spam host is spam, versus 97.4% normal for normal
hosts; :class:`SpamDetector` reproduces that measurement and exposes a simple
classifier on top of it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from .._validation import check_k, check_node_index, check_probability
from ..core.config import IndexParams
from ..core.query import ReverseTopKEngine
from ..graph.digraph import DiGraph
from ..graph.transition import transition_matrix


@dataclass(frozen=True)
class SpamDetectionReport:
    """Aggregate statistics of a labelled reverse top-k sweep.

    Attributes
    ----------
    k:
        The reverse top-k depth used.
    spam_queries / normal_queries:
        Number of labelled queries evaluated per class.
    mean_spam_ratio_for_spam:
        Average fraction of spam hosts in the reverse top-k set of spam
        queries (the paper reports 0.961 at ``k = 5``).
    mean_spam_ratio_for_normal:
        Average fraction of spam hosts in the reverse top-k set of normal
        queries (the paper's complement of 0.974).
    """

    k: int
    spam_queries: int
    normal_queries: int
    mean_spam_ratio_for_spam: float
    mean_spam_ratio_for_normal: float

    def separation(self) -> float:
        """Gap between the two class averages — the detection signal strength."""
        return self.mean_spam_ratio_for_spam - self.mean_spam_ratio_for_normal


class SpamDetector:
    """Classify hosts as spam from the composition of their reverse top-k sets.

    Parameters
    ----------
    graph:
        The host graph.
    labels:
        0/1 array, 1 marking known spam hosts (the partially labelled ground
        truth used to score unlabelled queries).
    k:
        Reverse top-k depth (the paper uses 5).
    params:
        Index construction parameters.
    """

    def __init__(
        self,
        graph: DiGraph,
        labels: np.ndarray,
        *,
        k: int = 5,
        params: Optional[IndexParams] = None,
    ) -> None:
        labels = np.asarray(labels, dtype=np.int64).ravel()
        if labels.size != graph.n_nodes:
            raise ValueError(
                f"labels cover {labels.size} nodes but the graph has {graph.n_nodes}"
            )
        self.graph = graph
        self.labels = labels
        self.k = check_k(k, graph.n_nodes)
        matrix = transition_matrix(graph)
        self.engine = ReverseTopKEngine.build(graph, params, transition=matrix)

    def reverse_set(self, host: int) -> np.ndarray:
        """Reverse top-k set of ``host``."""
        host = check_node_index(host, self.graph.n_nodes, "host")
        return self.engine.query(host, self.k).nodes

    def spam_ratio(self, host: int) -> float:
        """Fraction of labelled-spam hosts in the reverse top-k set of ``host``.

        The query host itself is excluded from the ratio so that a host's own
        label never influences its score.
        """
        members = [int(u) for u in self.reverse_set(host) if int(u) != int(host)]
        if not members:
            return 0.0
        return float(np.mean([self.labels[u] == 1 for u in members]))

    def classify(self, host: int, *, threshold: float = 0.5) -> bool:
        """Return ``True`` when ``host`` looks like spam (ratio above threshold)."""
        threshold = check_probability(threshold, "threshold", inclusive=True)
        return self.spam_ratio(host) >= threshold

    def evaluate(
        self,
        *,
        spam_sample: Optional[Sequence[int]] = None,
        normal_sample: Optional[Sequence[int]] = None,
        max_queries_per_class: Optional[int] = None,
    ) -> SpamDetectionReport:
        """Reproduce the §5.4 measurement over labelled spam and normal hosts.

        ``spam_sample`` / ``normal_sample`` restrict which hosts are queried;
        by default every labelled host is used (capped by
        ``max_queries_per_class`` for large graphs).

        A query host whose reverse top-k set contains no host other than
        itself carries no information about "which hosts give it their top-k
        contributions", so such hosts are excluded from the class averages —
        matching the paper's phrasing, which averages over the composition of
        (non-empty) answer sets.
        """
        spam_hosts = list(spam_sample) if spam_sample is not None else np.flatnonzero(
            self.labels == 1
        ).tolist()
        normal_hosts = (
            list(normal_sample)
            if normal_sample is not None
            else np.flatnonzero(self.labels == 0).tolist()
        )
        if max_queries_per_class is not None:
            spam_hosts = spam_hosts[:max_queries_per_class]
            normal_hosts = normal_hosts[:max_queries_per_class]

        spam_ratios = self._ratios_of_non_empty(spam_hosts)
        normal_ratios = self._ratios_of_non_empty(normal_hosts)
        return SpamDetectionReport(
            k=self.k,
            spam_queries=len(spam_hosts),
            normal_queries=len(normal_hosts),
            mean_spam_ratio_for_spam=float(np.mean(spam_ratios)) if spam_ratios else 0.0,
            mean_spam_ratio_for_normal=float(np.mean(normal_ratios)) if normal_ratios else 0.0,
        )

    def _ratios_of_non_empty(self, hosts: Sequence[int]) -> list[float]:
        """Spam ratios of the hosts whose reverse sets contain other hosts."""
        ratios = []
        for host in hosts:
            members = [int(u) for u in self.reverse_set(int(host)) if int(u) != int(host)]
            if members:
                ratios.append(float(np.mean([self.labels[u] == 1 for u in members])))
        return ratios
