"""Author popularity in co-authorship networks (Section 5.4, Table 3).

The paper runs a reverse top-5 query from every author in a DBLP subset using
a *weighted* RWR (transition probability proportional to the number of
co-authored papers) and ranks authors by the size of their reverse top-k
lists.  The headline observation of Table 3: the most "approachable" authors
have reverse top-k lists several times longer than their direct co-author
count — i.e. many researchers who never co-authored with them still count
them among their strongest indirect collaborators.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence


from .._validation import check_k
from ..core.config import IndexParams
from ..core.query import ReverseTopKEngine
from ..graph.digraph import DiGraph
from ..graph.transition import weighted_transition_matrix


@dataclass(frozen=True)
class AuthorPopularity:
    """Popularity record of a single author (one row of Table 3).

    Attributes
    ----------
    author:
        Node id of the author.
    name:
        Human-readable label (from the graph's node names).
    reverse_top_k_size:
        Number of authors whose top-k proximity set contains this author.
    n_coauthors:
        Direct co-author count (the author's degree).
    """

    author: int
    name: str
    reverse_top_k_size: int
    n_coauthors: int

    @property
    def indirect_reach(self) -> int:
        """How many non-co-authors still rank this author in their top-k."""
        return max(0, self.reverse_top_k_size - self.n_coauthors)


class AuthorPopularityAnalyzer:
    """Rank authors by reverse top-k list size on a weighted co-authorship graph.

    Parameters
    ----------
    graph:
        Co-authorship graph; edge weight = number of co-authored papers.
    k:
        Reverse top-k depth (the paper uses 5).
    params:
        Index parameters; the index is built over the *weighted* transition
        matrix ``a_{i,j} = w_{i,j} / w_j``.
    """

    def __init__(
        self,
        graph: DiGraph,
        *,
        k: int = 5,
        params: Optional[IndexParams] = None,
    ) -> None:
        self.graph = graph
        self.k = check_k(k, graph.n_nodes)
        matrix = weighted_transition_matrix(graph)
        self.engine = ReverseTopKEngine.build(graph, params, transition=matrix)

    def reverse_list_size(self, author: int) -> int:
        """Size of ``author``'s reverse top-k list."""
        return len(self.engine.query(int(author), self.k).nodes)

    def popularity(self, author: int) -> AuthorPopularity:
        """Full popularity record of a single author."""
        author = int(author)
        return AuthorPopularity(
            author=author,
            name=self.graph.name_of(author),
            reverse_top_k_size=self.reverse_list_size(author),
            n_coauthors=int(self.graph.out_degree[author]),
        )

    def ranking(
        self,
        *,
        top: int = 10,
        authors: Optional[Sequence[int]] = None,
    ) -> List[AuthorPopularity]:
        """The ``top`` authors with the longest reverse top-k lists (Table 3).

        ``authors`` restricts the sweep to a subset (useful for sampling on
        large graphs); by default every author is queried, as in the paper.
        """
        candidates = (
            [int(a) for a in authors] if authors is not None else list(range(self.graph.n_nodes))
        )
        records = [self.popularity(author) for author in candidates]
        records.sort(key=lambda record: (-record.reverse_top_k_size, record.author))
        return records[: max(0, int(top))]

    def popularity_versus_degree(self) -> Dict[int, tuple[int, int]]:
        """Map every author to ``(reverse list size, co-author count)``.

        Used to confirm the paper's claim that reverse top-k size is a
        stronger popularity signal than the degree alone.
        """
        return {
            author: (self.reverse_list_size(author), int(self.graph.out_degree[author]))
            for author in range(self.graph.n_nodes)
        }
