"""Approximate top-k via Monte Carlo simulation (Avrachenkov et al., WAW 2011).

Useful when the exact order within the top-k set is not important; the paper
lists this family as related work.  Both the End Point and the Complete Path
estimators from :mod:`repro.rwr.monte_carlo` can back the ranking.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np
import scipy.sparse as sp

from .._validation import check_k, check_membership, check_node_index
from ..rwr.monte_carlo import mc_complete_path, mc_end_point
from ..rwr.power_method import DEFAULT_ALPHA
from ..utils.rng import SeedLike
from ..utils.sparsetools import dense_top_k


def monte_carlo_top_k(
    transition: sp.spmatrix,
    source: int,
    k: int,
    *,
    walks: int = 5000,
    method: str = "complete_path",
    alpha: float = DEFAULT_ALPHA,
    seed: SeedLike = None,
) -> Tuple[np.ndarray, np.ndarray]:
    """Approximate top-k proximity set of ``source`` from simulated walks.

    Parameters
    ----------
    method:
        ``"complete_path"`` (visit counts, lower variance) or ``"end_point"``
        (terminal nodes only).
    walks:
        Number of simulated random walks; accuracy grows with the square root.
    """
    n = transition.shape[0]
    source = check_node_index(source, n, "source")
    k = check_k(k, n)
    method = check_membership(method, ("complete_path", "end_point"), "method")
    if method == "complete_path":
        estimate = mc_complete_path(transition, source, walks=walks, alpha=alpha, seed=seed)
    else:
        estimate = mc_end_point(transition, source, walks=walks, alpha=alpha, seed=seed)
    return dense_top_k(estimate, k)
