"""Top-k RWR proximity search baselines (related work, §6.2).

The reverse top-k problem verifies membership of the query in other nodes'
top-k sets; these modules solve the *forward* problem — find the k nodes with
the highest proximity **from** a given node — using the algorithms the paper
cites as prior art.  They serve three purposes in this repository:

* as comparison points in the ablation benchmarks,
* as independent oracles in tests (their top-k sets must agree with the
  index's fully-refined lower bounds),
* to demonstrate why naively reusing them for reverse top-k is too expensive
  (one top-k computation per node).
"""

from .bpa import basic_push_top_k
from .exact import exact_top_k
from .kdash import KDashIndex
from .mc_topk import monte_carlo_top_k

__all__ = [
    "exact_top_k",
    "basic_push_top_k",
    "KDashIndex",
    "monte_carlo_top_k",
]
