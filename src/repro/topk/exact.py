"""Exact top-k RWR search by fully converging the proximity vector."""

from __future__ import annotations

from typing import Tuple

import numpy as np
import scipy.sparse as sp

from .._validation import check_k, check_node_index
from ..rwr.power_method import DEFAULT_ALPHA, DEFAULT_TOLERANCE, proximity_vector
from ..utils.sparsetools import dense_top_k


def exact_top_k(
    transition: sp.spmatrix,
    source: int,
    k: int,
    *,
    alpha: float = DEFAULT_ALPHA,
    tolerance: float = DEFAULT_TOLERANCE,
) -> Tuple[np.ndarray, np.ndarray]:
    """Exact top-k proximity set of ``source``: ``(node ids, values)`` descending.

    Runs the power method to convergence and extracts the k largest entries.
    This is the reference implementation that the approximate methods (BPA,
    Monte Carlo) and the index's fully-refined lower bounds are tested against.
    """
    n = transition.shape[0]
    source = check_node_index(source, n, "source")
    k = check_k(k, n)
    vector = proximity_vector(transition, source, alpha=alpha, tolerance=tolerance).vector
    return dense_top_k(vector, k)
