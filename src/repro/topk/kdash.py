"""K-dash-style exact top-k search backed by a sparse LU factorisation.

Fujiwara et al. (PVLDB 2012) precompute an LU decomposition of
``I - (1-alpha) A`` so that any proximity vector can be obtained with two
sparse triangular solves, then prune the candidate scan with tree-based upper
bounds.  This module reproduces the essential structure — factor once, answer
many top-k queries exactly — which is what the paper uses K-dash for when
discussing the brute-force cost of reverse search (Section 3).  The BFS-tree
estimation of the original is unnecessary here because the triangular solves
already dominate on the graph sizes we target.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np
import scipy.sparse as sp

from .._validation import check_k, check_node_index
from ..rwr.linear_solver import ProximityLU
from ..rwr.power_method import DEFAULT_ALPHA
from ..utils.sparsetools import dense_top_k


class KDashIndex:
    """Factor-once / query-many exact top-k search.

    Examples
    --------
    >>> import scipy.sparse as sp
    >>> import numpy as np
    >>> transition = sp.csc_matrix(np.array([[0.0, 1.0], [1.0, 0.0]]))
    >>> index = KDashIndex(transition)
    >>> nodes, values = index.top_k(0, 1)
    >>> int(nodes[0])
    0
    """

    def __init__(self, transition: sp.spmatrix, *, alpha: float = DEFAULT_ALPHA) -> None:
        self._lu = ProximityLU(transition, alpha=alpha)
        self.alpha = alpha

    @property
    def n_nodes(self) -> int:
        """Number of nodes covered by the factorisation."""
        return self._lu.n_nodes

    def proximity_vector(self, source: int) -> np.ndarray:
        """Exact proximity vector of ``source`` via two triangular solves."""
        return self._lu.column(source)

    def top_k(self, source: int, k: int) -> Tuple[np.ndarray, np.ndarray]:
        """Exact top-k proximity set of ``source``: ``(node ids, values)``."""
        source = check_node_index(source, self.n_nodes, "source")
        k = check_k(k, self.n_nodes)
        return dense_top_k(self.proximity_vector(source), k)

    def kth_value(self, source: int, k: int) -> float:
        """The exact k-th largest proximity value from ``source``."""
        _, values = self.top_k(source, k)
        return float(values[-1]) if values.size else 0.0
