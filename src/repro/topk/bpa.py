"""Basic Push Algorithm (BPA) for top-k personalised PageRank (Gupta et al., WWW 2008).

BPA runs BCA-style push operations from the query node while maintaining the
current top-k retained values and an upper bound on the (k+1)-th largest
value; it stops as soon as the k-th retained value is at least that upper
bound, i.e. as soon as the top-k *set* can no longer change.  The bound used
here is the simple residual-based one: any node's final proximity can exceed
its current retained ink by at most the total residue ``||r||_1``.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np
import scipy.sparse as sp

from .._validation import check_k, check_node_index, check_positive_float
from ..rwr.power_method import DEFAULT_ALPHA
from ..utils.sparsetools import dense_top_k


def basic_push_top_k(
    transition: sp.spmatrix,
    source: int,
    k: int,
    *,
    alpha: float = DEFAULT_ALPHA,
    propagation_threshold: float = 1e-7,
    max_pushes: Optional[int] = None,
) -> Tuple[np.ndarray, np.ndarray]:
    """Top-k proximity set of ``source`` via early-terminated push operations.

    Returns ``(node ids, lower-bound values)`` in descending value order.  The
    set is exact as soon as the early-termination condition fires; values are
    lower bounds of the true proximities (they are the retained ink).
    """
    n = transition.shape[0]
    source = check_node_index(source, n, "source")
    k = check_k(k, n)
    eta = check_positive_float(propagation_threshold, "propagation_threshold")
    if max_pushes is None:
        max_pushes = 200 * n

    matrix = transition.tocsc()
    retained = np.zeros(n, dtype=np.float64)
    residual = np.zeros(n, dtype=np.float64)
    residual[source] = 1.0
    total_residual = 1.0
    pushes = 0

    while pushes < max_pushes:
        # Termination check: the k-th best retained value cannot be overtaken
        # by any node that would need more than the entire remaining residue.
        if total_residual <= eta:
            break
        if k <= n:
            kth = np.partition(retained, -k)[-k]
            runner_up = _largest_below_top_k(retained, k)
            if kth >= runner_up + total_residual:
                break
        node = int(np.argmax(residual))
        amount = residual[node]
        if amount < eta:
            break
        pushes += 1
        residual[node] = 0.0
        total_residual -= amount
        retained[node] += alpha * amount
        start, stop = matrix.indptr[node], matrix.indptr[node + 1]
        if start == stop:
            continue
        shares = (1.0 - alpha) * amount * matrix.data[start:stop]
        residual[matrix.indices[start:stop]] += shares
        total_residual += float(shares.sum())

    return dense_top_k(retained, k)


def _largest_below_top_k(values: np.ndarray, k: int) -> float:
    """The (k+1)-th largest value, or 0 when fewer than k+1 entries exist."""
    if values.size <= k:
        return 0.0
    return float(np.partition(values, -(k + 1))[-(k + 1)])
