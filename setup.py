"""Setuptools shim.

Metadata lives in ``pyproject.toml``; this file exists so that legacy
``pip install -e .`` works in environments without the ``wheel`` package
(PEP 660 editable installs need it, ``setup.py develop`` does not).
"""

from setuptools import setup

setup()
