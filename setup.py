"""Setuptools entry point.

The base package needs only numpy/scipy; the compiled propagation and scan
kernels are an opt-in extra so the pure-NumPy fallback stays installable
everywhere::

    pip install repro[fast]   # numba-compiled BCA iteration + scan stages
"""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="0.6.0",
    description="Reverse top-k RWR search with hub-based lower-bound indexing",
    package_dir={"": "src"},
    packages=find_packages("src"),
    python_requires=">=3.10",
    install_requires=["numpy>=1.24", "scipy>=1.10"],
    extras_require={"fast": ["numba>=0.57"]},
)
