#!/usr/bin/env python
"""Summarize and diff reprolint JSON reports.

``python -m repro.analysis --format json`` emits a machine-readable report;
this script turns one report into a per-rule/per-module table, or two
reports into a fingerprint-level diff — the review tool for baseline churn:

    PYTHONPATH=src python -m repro.analysis src/repro --format json > new.json
    python scripts/reprolint_report.py summarize new.json
    python scripts/reprolint_report.py diff old.json new.json

``diff`` exits 1 when findings were added (new violations or new baseline
entries to argue about in review), 0 otherwise.
"""

import argparse
import json
import sys
from collections import Counter
from pathlib import Path
from typing import Dict, List


def _load(path: str) -> Dict[str, object]:
    try:
        report = json.loads(Path(path).read_text(encoding="utf-8"))
    except (OSError, json.JSONDecodeError) as exc:
        raise SystemExit(f"error: cannot read report {path!r}: {exc}")
    if not isinstance(report, dict) or "findings" not in report:
        raise SystemExit(f"error: {path!r} is not a reprolint JSON report")
    return report


def _module_of(finding: Dict[str, object]) -> str:
    """Group findings by their top two path components (e.g. src/repro/net)."""
    parts = Path(str(finding["path"])).parts
    return "/".join(parts[:3]) if len(parts) > 3 else str(finding["path"])


def _all_findings(report: Dict[str, object]) -> List[Dict[str, object]]:
    findings = list(report["findings"])  # type: ignore[arg-type]
    findings.extend(report.get("suppressed", []))  # type: ignore[arg-type]
    return findings


def summarize(args: argparse.Namespace) -> int:
    report = _load(args.report)
    findings = _all_findings(report)
    by_rule: Counter = Counter()
    by_module: Counter = Counter()
    states: Dict[str, Counter] = {}
    for finding in findings:
        rule = str(finding["rule"])
        by_rule[rule] += 1
        by_module[_module_of(finding)] += 1
        state = (
            "suppressed"
            if "suppression_reason" in finding
            else "baselined"
            if finding.get("baselined")
            else "unbaselined"
        )
        states.setdefault(rule, Counter())[state] += 1

    print(f"report: {args.report}")
    summary = report.get("summary", {})
    print(
        f"  {summary.get('n_findings', len(findings))} finding(s), "
        f"{summary.get('n_unbaselined', '?')} unbaselined, "
        f"{summary.get('n_suppressed', '?')} suppressed, "
        f"{summary.get('n_expired_baseline', '?')} expired baseline entr(ies)"
    )
    print("\nby rule:")
    for rule in sorted(by_rule):
        detail = ", ".join(
            f"{count} {state}" for state, count in sorted(states[rule].items())
        )
        print(f"  {rule}: {by_rule[rule]:3d}  ({detail})")
    print("\nby module:")
    for module, count in by_module.most_common():
        print(f"  {module}: {count}")
    return 0


def _fingerprints(report: Dict[str, object]) -> Dict[str, Dict[str, object]]:
    return {str(f["fingerprint"]): f for f in _all_findings(report)}


def diff(args: argparse.Namespace) -> int:
    old = _fingerprints(_load(args.old))
    new = _fingerprints(_load(args.new))
    added = sorted(set(new) - set(old))
    removed = sorted(set(old) - set(new))

    if not added and not removed:
        print("no finding-level changes between the two reports")
        return 0
    if added:
        print(f"added ({len(added)}):")
        for fingerprint in added:
            f = new[fingerprint]
            print(
                f"  + {f['rule']} {f['path']}:{f['line']} "
                f"{f['symbol']} — {f['message']}"
            )
    if removed:
        print(f"removed ({len(removed)}):")
        for fingerprint in removed:
            f = old[fingerprint]
            print(
                f"  - {f['rule']} {f['path']}:{f['line']} "
                f"{f['symbol']} — {f['message']}"
            )
    return 1 if added else 0


def main(argv: List[str] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="reprolint_report",
        description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_sum = sub.add_parser("summarize", help="per-rule/per-module table")
    p_sum.add_argument("report", help="JSON report path")
    p_sum.set_defaults(func=summarize)

    p_diff = sub.add_parser("diff", help="fingerprint diff of two reports")
    p_diff.add_argument("old", help="baseline-of-record JSON report")
    p_diff.add_argument("new", help="candidate JSON report")
    p_diff.set_defaults(func=diff)

    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
