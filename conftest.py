"""Repository-level pytest configuration.

Prepends ``src/`` to ``sys.path`` so the test-suite and benchmarks run even
when the package has not been installed (offline environments without the
``wheel`` package cannot perform PEP 660 editable installs; see README).
An installed ``repro`` takes precedence because the editable install puts the
same directory on the path.
"""

import sys
from pathlib import Path

_SRC = Path(__file__).resolve().parent / "src"
if str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))
