"""Thread-safety tests for LatencyStats (network-serving satellite).

The accumulator is written from the event-loop thread and executor workers
simultaneously, and per-burst accumulators cross-merge; these tests pin
that no sample is lost under contention and that symmetric merges cannot
deadlock.
"""

from __future__ import annotations

import pickle
import threading

from repro.utils.timer import LatencyStats


class TestConcurrentRecord:
    def test_no_samples_lost_under_contention(self):
        stats = LatencyStats()
        n_threads, per_thread = 8, 500
        barrier = threading.Barrier(n_threads)

        def record():
            barrier.wait()
            for i in range(per_thread):
                stats.record((i + 1) / 1000.0)

        threads = [threading.Thread(target=record) for _ in range(n_threads)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert stats.count == n_threads * per_thread
        assert stats.min == 1 / 1000.0
        assert stats.max == per_thread / 1000.0

    def test_readers_race_writers_without_corruption(self):
        stats = LatencyStats()
        stop = threading.Event()
        failures = []

        def read():
            while not stop.is_set():
                snapshot = stats.as_dict()
                if snapshot["count"]:
                    if not (
                        snapshot["min_seconds"]
                        <= snapshot["p50_seconds"]
                        <= snapshot["max_seconds"]
                    ):
                        failures.append(snapshot)

        reader = threading.Thread(target=read)
        reader.start()
        for i in range(3000):
            stats.record((i % 100 + 1) / 1000.0)
            if i % 100 == 0:
                stats.percentile(95)
        stop.set()
        reader.join()
        assert not failures
        assert stats.count == 3000


class TestCrossMerge:
    def test_symmetric_merge_storm_does_not_deadlock(self):
        """a.merge(b) racing b.merge(a): id-ordered locking must never
        deadlock, whatever the interleaving."""
        a = LatencyStats()
        b = LatencyStats()
        for i in range(50):
            a.record(0.001 * (i + 1))
            b.record(0.002 * (i + 1))
        barrier = threading.Barrier(2)
        done = threading.Event()

        def merge(dst, src):
            barrier.wait()
            for _ in range(2000):
                dst.merge(src)

        t1 = threading.Thread(target=merge, args=(a, b))
        t2 = threading.Thread(target=merge, args=(b, a))
        watchdog = threading.Timer(60.0, done.set)
        watchdog.start()
        t1.start()
        t2.start()
        t1.join(timeout=60)
        t2.join(timeout=60)
        watchdog.cancel()
        assert not t1.is_alive() and not t2.is_alive(), "merge deadlocked"

    def test_concurrent_merges_lose_no_samples(self):
        total = LatencyStats()
        parts = []
        for part_index in range(8):
            part = LatencyStats()
            for i in range(200):
                part.record((part_index * 200 + i + 1) / 1000.0)
            parts.append(part)

        threads = [
            threading.Thread(target=total.merge, args=(part,)) for part in parts
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert total.count == 8 * 200
        assert total.max == (8 * 200) / 1000.0


class TestPickle:
    def test_round_trip_rebuilds_lock(self):
        stats = LatencyStats()
        for i in range(10):
            stats.record((i + 1) / 100.0)
        clone = pickle.loads(pickle.dumps(stats))
        assert clone.count == 10
        assert clone.p50 == stats.p50
        clone.record(1.0)  # the rebuilt lock must work
        assert clone.count == 11
        assert stats.count == 10  # deep copy, not shared
