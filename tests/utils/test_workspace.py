"""Tests for the thread-local scratch-array pool."""

import pickle
import threading

import numpy as np

from repro.utils.workspace import ArrayWorkspace


class TestTake:
    def test_returns_requested_shape_and_dtype(self):
        ws = ArrayWorkspace()
        array = ws.take("a", (3, 4), np.float32)
        assert array.shape == (3, 4)
        assert array.dtype == np.float32
        assert array.flags.c_contiguous

    def test_accepts_int_shape(self):
        ws = ArrayWorkspace()
        assert ws.take("a", 7).shape == (7,)

    def test_same_name_reuses_the_backing_buffer(self):
        ws = ArrayWorkspace()
        first = ws.take("a", (4, 5))
        second = ws.take("a", (4, 5))
        assert first.base is second.base

    def test_smaller_request_reuses_larger_buffer(self):
        ws = ArrayWorkspace()
        big = ws.take("a", 100)
        small = ws.take("a", 3)
        assert small.base is big.base
        assert small.shape == (3,)

    def test_larger_request_grows_the_buffer(self):
        ws = ArrayWorkspace()
        small = ws.take("a", 3)
        big = ws.take("a", 100)
        assert big.size == 100
        assert big.base is not small.base

    def test_distinct_names_do_not_alias(self):
        ws = ArrayWorkspace()
        a = ws.take("a", 8)
        b = ws.take("b", 8)
        a.fill(1.0)
        b.fill(2.0)
        assert np.all(a == 1.0)

    def test_distinct_dtypes_do_not_alias(self):
        ws = ArrayWorkspace()
        a = ws.take("a", 8, np.float64)
        b = ws.take("a", 8, np.int64)
        a.fill(1.0)
        b.fill(2)
        assert np.all(a == 1.0)

    def test_zero_sized_request_is_fine(self):
        ws = ArrayWorkspace()
        assert ws.take("a", 0).shape == (0,)
        assert ws.take("a", (0, 5)).shape == (0, 5)


class TestZerosAndArange:
    def test_zeros_clears_previous_garbage(self):
        ws = ArrayWorkspace()
        ws.take("a", 16).fill(np.nan)
        assert np.all(ws.zeros("a", 16) == 0.0)

    def test_zeros_bool_gives_false(self):
        ws = ArrayWorkspace()
        ws.take("m", 8, bool).fill(True)
        assert not ws.zeros("m", 8, bool).any()

    def test_arange_prefixes_stay_correct_after_shrink(self):
        ws = ArrayWorkspace()
        np.testing.assert_array_equal(ws.arange("i", 10), np.arange(10))
        np.testing.assert_array_equal(ws.arange("i", 4), np.arange(4))
        np.testing.assert_array_equal(ws.arange("i", 12), np.arange(12))

    def test_arange_dtype_is_int64(self):
        ws = ArrayWorkspace()
        assert ws.arange("i", 5).dtype == np.int64


class TestIsolation:
    def test_threads_get_private_buffers(self):
        ws = ArrayWorkspace()
        main = ws.take("a", 8)
        main.fill(7.0)
        seen = {}

        def worker():
            array = ws.take("a", 8)
            seen["aliases_main"] = array.base is main.base
            array.fill(-1.0)

        thread = threading.Thread(target=worker)
        thread.start()
        thread.join()
        assert seen["aliases_main"] is False
        assert np.all(main == 7.0)

    def test_pickle_round_trip_yields_a_working_empty_pool(self):
        ws = ArrayWorkspace()
        ws.take("a", 8)
        clone = pickle.loads(pickle.dumps(ws))
        array = clone.take("a", 4)
        assert array.shape == (4,)

    def test_deepcopy_via_pickle_in_engine_state(self):
        # Engines ship workspaces inside their __getstate__; the copy must
        # not drag scratch contents (or thread-local handles) along.
        ws = ArrayWorkspace()
        ws.take("big", 1 << 16)
        payload = pickle.dumps(ws)
        assert len(payload) < 4096
