"""Tests for sparse-vector helpers."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.utils.sparsetools import (
    dense_top_k,
    iter_sparse_entries,
    l1_norm,
    sparse_column_to_dense,
    sparse_top_k,
    sparse_vector_from_dict,
    top_k_descending,
)


class TestL1Norm:
    def test_dense(self):
        assert l1_norm(np.array([1.0, -2.0, 3.0])) == pytest.approx(6.0)

    def test_sparse(self):
        vector = sp.csc_matrix(np.array([[0.0], [2.0], [-1.0]]))
        assert l1_norm(vector) == pytest.approx(3.0)

    def test_empty_sparse(self):
        assert l1_norm(sp.csc_matrix((5, 1))) == 0.0


class TestSparseVectorFromDict:
    def test_basic(self):
        vector = sparse_vector_from_dict({2: 0.5, 0: 0.25}, 4)
        dense = vector.toarray().ravel()
        assert dense.tolist() == [0.25, 0.0, 0.5, 0.0]

    def test_empty(self):
        vector = sparse_vector_from_dict({}, 3)
        assert vector.nnz == 0
        assert vector.shape == (3, 1)


class TestDenseTopK:
    def test_values_descending(self):
        indices, values = dense_top_k(np.array([0.1, 0.9, 0.5, 0.7]), 3)
        assert values.tolist() == [0.9, 0.7, 0.5]
        assert indices.tolist() == [1, 3, 2]

    def test_k_larger_than_size(self):
        indices, values = dense_top_k(np.array([2.0, 1.0]), 5)
        assert len(values) == 2

    def test_k_zero(self):
        indices, values = dense_top_k(np.array([1.0]), 0)
        assert len(indices) == 0

    def test_deterministic_tie_break_by_index(self):
        indices, _ = dense_top_k(np.array([0.5, 0.5, 0.5]), 2)
        assert indices.tolist() == [0, 1]


class TestSparseTopK:
    def test_matches_dense(self):
        dense = np.array([0.0, 0.3, 0.0, 0.8, 0.1])
        column = sp.csc_matrix(dense.reshape(-1, 1))
        sparse_idx, sparse_val = sparse_top_k(column, 2)
        dense_idx, dense_val = dense_top_k(dense, 2)
        assert sparse_idx.tolist() == dense_idx.tolist()
        assert sparse_val.tolist() == pytest.approx(dense_val.tolist())

    def test_empty_column(self):
        indices, values = sparse_top_k(sp.csc_matrix((4, 1)), 3)
        assert len(indices) == 0

    def test_accepts_dense_input(self):
        indices, values = sparse_top_k(np.array([1.0, 2.0]), 1)
        assert indices.tolist() == [1]


class TestTopKDescending:
    def test_padding_with_zeros(self):
        values = top_k_descending(np.array([0.4, 0.2]), 4)
        assert values.tolist() == [0.4, 0.2, 0.0, 0.0]

    def test_descending_order(self):
        values = top_k_descending(np.array([0.1, 0.5, 0.3]), 3)
        assert values.tolist() == [0.5, 0.3, 0.1]


class TestConversions:
    def test_sparse_column_to_dense(self):
        column = sp.csc_matrix(np.array([[1.0], [0.0], [2.0]]))
        assert sparse_column_to_dense(column).tolist() == [1.0, 0.0, 2.0]

    def test_dense_passthrough_checks_size(self):
        with pytest.raises(ValueError):
            sparse_column_to_dense(np.array([1.0, 2.0]), size=3)

    def test_iter_sparse_entries(self):
        column = sp.csc_matrix(np.array([[0.0], [0.5], [0.0], [0.25]]))
        entries = dict(iter_sparse_entries(column))
        assert entries == {1: 0.5, 3: 0.25}
