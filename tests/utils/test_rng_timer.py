"""Tests for RNG plumbing and timers."""

import numpy as np
import pytest

from repro.utils.rng import ensure_rng, spawn_rngs
from repro.utils.timer import StageTimer, Timer


class TestEnsureRng:
    def test_none_gives_generator(self):
        assert isinstance(ensure_rng(None), np.random.Generator)

    def test_int_seed_reproducible(self):
        assert ensure_rng(42).random() == ensure_rng(42).random()

    def test_generator_passthrough(self):
        rng = np.random.default_rng(1)
        assert ensure_rng(rng) is rng

    def test_seed_sequence_accepted(self):
        seq = np.random.SeedSequence(5)
        assert isinstance(ensure_rng(seq), np.random.Generator)


class TestSpawnRngs:
    def test_count(self):
        rngs = spawn_rngs(0, 4)
        assert len(rngs) == 4

    def test_independent_streams(self):
        first, second = spawn_rngs(0, 2)
        assert first.random() != second.random()

    def test_reproducible(self):
        a = [rng.random() for rng in spawn_rngs(7, 3)]
        b = [rng.random() for rng in spawn_rngs(7, 3)]
        assert a == b

    def test_negative_count_rejected(self):
        with pytest.raises(ValueError):
            spawn_rngs(0, -1)

    def test_spawn_from_generator(self):
        rngs = spawn_rngs(np.random.default_rng(3), 2)
        assert len(rngs) == 2


class TestTimer:
    def test_context_manager_measures(self):
        with Timer() as timer:
            sum(range(10_000))
        assert timer.elapsed > 0.0

    def test_stop_returns_elapsed(self):
        timer = Timer()
        timer.restart()
        assert timer.stop() >= 0.0

    def test_restart_resets(self):
        timer = Timer()
        with timer:
            pass
        timer.restart()
        assert timer.stop() >= 0.0


class TestStageTimer:
    def test_accumulates_stages(self):
        stages = StageTimer()
        stages.add("a", 1.0)
        stages.add("a", 0.5)
        stages.add("b", 2.0)
        assert stages.stages["a"] == pytest.approx(1.5)
        assert stages.total == pytest.approx(3.5)

    def test_context_manager_records(self):
        stages = StageTimer()
        with stages.time("work"):
            sum(range(1000))
        assert stages.stages["work"] > 0.0

    def test_as_dict_preserves_order(self):
        stages = StageTimer()
        stages.add("later", 1.0)
        stages.add("earlier", 1.0)
        assert list(stages.as_dict()) == ["later", "earlier"]


class TestLatencyStats:
    def test_empty_is_all_zero(self):
        from repro.utils.timer import LatencyStats

        stats = LatencyStats()
        assert stats.count == 0
        assert stats.mean == 0.0
        assert stats.p50 == 0.0
        assert stats.p99 == 0.0

    def test_count_mean_min_max(self):
        from repro.utils.timer import LatencyStats

        stats = LatencyStats()
        for value in (0.010, 0.020, 0.030):
            stats.record(value)
        assert stats.count == 3
        assert stats.mean == pytest.approx(0.020)
        assert stats.min == pytest.approx(0.010)
        assert stats.max == pytest.approx(0.030)
        assert stats.total == pytest.approx(0.060)

    def test_nearest_rank_percentiles(self):
        from repro.utils.timer import LatencyStats

        stats = LatencyStats((i / 1000 for i in range(1, 101)))  # 1..100 ms
        assert stats.p50 == pytest.approx(0.050)
        assert stats.p95 == pytest.approx(0.095)
        assert stats.p99 == pytest.approx(0.099)
        assert stats.percentile(100) == pytest.approx(0.100)
        assert stats.percentile(0) == pytest.approx(0.001)

    def test_tail_percentiles_catch_outliers(self):
        from repro.utils.timer import LatencyStats

        stats = LatencyStats([0.001] * 99 + [1.0])
        assert stats.p50 == pytest.approx(0.001)
        assert stats.percentile(100) == pytest.approx(1.0)

    def test_percentile_out_of_range_rejected(self):
        from repro.utils.timer import LatencyStats

        with pytest.raises(ValueError):
            LatencyStats([0.1]).percentile(101)

    def test_merge_combines_samples(self):
        from repro.utils.timer import LatencyStats

        a = LatencyStats([0.010, 0.020])
        b = LatencyStats([0.030])
        merged = a.merge(b)
        assert merged is a
        assert a.count == 3
        assert b.count == 1  # the source accumulator is untouched
        assert a.max == pytest.approx(0.030)

    def test_record_after_percentile_invalidates_sort_cache(self):
        from repro.utils.timer import LatencyStats

        stats = LatencyStats([0.030, 0.010])
        assert stats.p50 == pytest.approx(0.010)
        stats.record(0.001)
        assert stats.p50 == pytest.approx(0.010)
        assert stats.min == pytest.approx(0.001)

    def test_as_dict_keys(self):
        from repro.utils.timer import LatencyStats

        payload = LatencyStats([0.5]).as_dict()
        assert payload["count"] == 1
        assert set(payload) == {
            "count",
            "total_seconds",
            "mean_seconds",
            "min_seconds",
            "max_seconds",
            "p50_seconds",
            "p95_seconds",
            "p99_seconds",
        }

    # -- edge cases pinned for the sharded router's constant merging -- #

    def test_single_sample_percentiles_collapse_to_it(self):
        from repro.utils.timer import LatencyStats

        stats = LatencyStats([0.042])
        assert stats.count == 1
        assert stats.mean == pytest.approx(0.042)
        assert stats.min == stats.max == pytest.approx(0.042)
        for p in (0, 1, 50, 95, 99, 100):
            assert stats.percentile(p) == pytest.approx(0.042)

    def test_merge_of_empty_accumulator_is_a_noop(self):
        from repro.utils.timer import LatencyStats

        stats = LatencyStats([0.010, 0.020])
        assert stats.p50 == pytest.approx(0.010)  # warm the sort cache
        merged = stats.merge(LatencyStats())
        assert merged is stats
        assert stats.count == 2
        assert stats.p50 == pytest.approx(0.010)

    def test_merge_into_empty_adopts_other_samples(self):
        from repro.utils.timer import LatencyStats

        stats = LatencyStats()
        stats.merge(LatencyStats([0.030, 0.010]))
        assert stats.count == 2
        assert stats.p50 == pytest.approx(0.010)

    def test_merge_with_self_does_not_double_samples(self):
        from repro.utils.timer import LatencyStats

        stats = LatencyStats([0.010, 0.020])
        assert stats.merge(stats) is stats
        assert stats.count == 2

    def test_merge_of_disjoint_counts_is_order_independent(self):
        from repro.utils.timer import LatencyStats

        left = [0.001, 0.004, 0.009]
        right = [0.002, 0.003, 0.005, 0.007, 0.008, 0.010, 0.020]
        a = LatencyStats(left).merge(LatencyStats(right))
        b = LatencyStats(right).merge(LatencyStats(left))
        assert a.count == b.count == len(left) + len(right)
        for p in (0, 25, 50, 75, 95, 99, 100):
            assert a.percentile(p) == pytest.approx(b.percentile(p))
        assert a.mean == pytest.approx(b.mean)
        assert (a.min, a.max) == (b.min, b.max)

    def test_merged_source_mutation_does_not_alias(self):
        from repro.utils.timer import LatencyStats

        source = LatencyStats([0.010])
        target = LatencyStats([0.020]).merge(source)
        source.record(0.500)
        assert target.count == 2
        assert target.max == pytest.approx(0.020)
