"""StageTimer nesting and LatencyStats histogram-adapter tests (PR 8)."""

from __future__ import annotations

import time

import pytest

from repro.utils.timer import LatencyStats, StageTimer


class TestStageTimerNesting:
    def test_child_time_is_excluded_from_parent(self):
        timer = StageTimer()
        with timer.time("outer"):
            time.sleep(0.02)
            with timer.time("inner"):
                time.sleep(0.03)
        stages = timer.as_dict()
        # Regression: the outer stage used to absorb the inner stage's time
        # too, double-counting it and making stage sums exceed the wall.
        assert stages["inner"] >= 0.03
        assert stages["outer"] >= 0.02
        assert stages["outer"] < 0.03  # excludes the inner 0.03s sleep
        assert timer.total == pytest.approx(sum(stages.values()))

    def test_three_levels_attribute_exclusively(self):
        timer = StageTimer()
        with timer.time("a"):
            time.sleep(0.01)
            with timer.time("b"):
                time.sleep(0.01)
                with timer.time("c"):
                    time.sleep(0.01)
        stages = timer.as_dict()
        for stage in ("a", "b", "c"):
            assert 0.01 <= stages[stage] < 0.02

    def test_sequential_same_stage_accumulates(self):
        timer = StageTimer()
        for _ in range(2):
            with timer.time("scan"):
                time.sleep(0.005)
        assert timer.as_dict()["scan"] >= 0.01

    def test_sibling_stages_do_not_interfere(self):
        timer = StageTimer()
        with timer.time("parent"):
            with timer.time("first"):
                time.sleep(0.01)
            with timer.time("second"):
                time.sleep(0.01)
        stages = timer.as_dict()
        assert stages["first"] >= 0.01
        assert stages["second"] >= 0.01
        assert stages["parent"] < 0.01  # both children excluded


class TestLatencyStatsSummary:
    def test_observe_is_record(self):
        stats = LatencyStats()
        stats.observe(0.5)
        stats.record(1.5)
        assert stats.count == 2
        assert stats.total == pytest.approx(2.0)

    def test_summary_buckets_are_cumulative(self):
        stats = LatencyStats()
        for value in (0.05, 0.2, 0.2, 0.7, 3.0):
            stats.record(value)
        summary = stats.summary((0.1, 0.5, 1.0))
        assert summary["buckets"] == [(0.1, 1), (0.5, 3), (1.0, 4)]
        assert summary["count"] == 5
        assert summary["sum"] == pytest.approx(4.15)

    def test_summary_edge_inclusive(self):
        stats = LatencyStats()
        stats.record(0.5)
        summary = stats.summary((0.5, 1.0))
        assert summary["buckets"][0] == (0.5, 1)

    def test_summary_of_empty_stats(self):
        summary = LatencyStats().summary((0.1, 1.0))
        assert summary == {
            "buckets": [(0.1, 0), (1.0, 0)],
            "count": 0,
            "sum": 0.0,
        }

    def test_summary_and_percentiles_share_samples(self):
        stats = LatencyStats()
        for i in range(100):
            stats.record(i / 100.0)
        summary = stats.summary((0.25, 0.5, 1.0))
        assert summary["count"] == len(stats) == 100
        assert stats.p50 == pytest.approx(stats.percentile(50))
        assert summary["buckets"][1][1] == 51  # 0.00..0.50 inclusive
