"""Metrics registry tests: instruments, labels, conflicts, exposition."""

from __future__ import annotations

import threading

import pytest

from repro.obs import DEFAULT_BUCKETS, MetricsRegistry, get_registry
from repro.utils.timer import LatencyStats


class TestInstruments:
    def test_counter_monotonic(self):
        registry = MetricsRegistry()
        counter = registry.counter("repro_test_total", "help text")
        counter.inc()
        counter.inc(4)
        assert counter.value == 5
        with pytest.raises(ValueError, match="only increase"):
            counter.inc(-1)

    def test_gauge_moves_both_ways(self):
        registry = MetricsRegistry()
        gauge = registry.gauge("repro_test_gauge")
        gauge.set(10)
        gauge.inc(2.5)
        gauge.dec()
        assert gauge.value == 11.5

    def test_histogram_cumulative_buckets(self):
        registry = MetricsRegistry()
        histogram = registry.histogram(
            "repro_test_seconds", buckets=(0.1, 1.0, 10.0)
        )
        for value in (0.05, 0.5, 0.5, 5.0, 50.0):
            histogram.observe(value)
        snap = histogram.labels().snapshot()
        assert snap["buckets"] == [(0.1, 1), (1.0, 3), (10.0, 4)]
        assert snap["count"] == 5
        assert snap["sum"] == pytest.approx(56.05)

    def test_histogram_bucket_edge_is_inclusive(self):
        registry = MetricsRegistry()
        histogram = registry.histogram("repro_edge_seconds", buckets=(1.0, 2.0))
        histogram.observe(1.0)  # le="1" must include exactly 1.0
        assert histogram.labels().snapshot()["buckets"][0] == (1.0, 1)

    def test_bad_names_and_buckets_rejected(self):
        registry = MetricsRegistry()
        with pytest.raises(ValueError, match="invalid metric name"):
            registry.counter("9starts_with_digit")
        with pytest.raises(ValueError, match="invalid metric name"):
            registry.counter("has space")
        with pytest.raises(ValueError, match="strictly increasing"):
            registry.histogram("repro_bad_seconds", buckets=(1.0, 1.0))
        with pytest.raises(ValueError, match="strictly increasing"):
            registry.histogram("repro_empty_seconds", buckets=())


class TestFamiliesAndLabels:
    def test_labeled_children_are_distinct(self):
        registry = MetricsRegistry()
        family = registry.counter("repro_by_tenant_total", labels=("tenant",))
        family.labels(tenant="a").inc()
        family.labels(tenant="a").inc()
        family.labels(tenant="b").inc(7)
        assert family.labels(tenant="a").value == 2
        assert family.labels(tenant="b").value == 7

    def test_wrong_label_names_rejected(self):
        registry = MetricsRegistry()
        family = registry.counter("repro_labeled_total", labels=("tenant",))
        with pytest.raises(ValueError, match="takes labels"):
            family.labels(shard="x")
        with pytest.raises(ValueError, match="call .labels"):
            family.inc()

    def test_get_or_create_returns_same_family(self):
        registry = MetricsRegistry()
        first = registry.counter("repro_shared_total", labels=("stage",))
        second = registry.counter("repro_shared_total", labels=("stage",))
        assert first is second

    def test_conflicting_reregistration_fails(self):
        registry = MetricsRegistry()
        registry.counter("repro_conflict_total")
        with pytest.raises(ValueError, match="conflicting"):
            registry.gauge("repro_conflict_total")
        with pytest.raises(ValueError, match="conflicting"):
            registry.counter("repro_conflict_total", labels=("tenant",))
        registry.histogram("repro_conflict_seconds", buckets=(1.0, 2.0))
        with pytest.raises(ValueError, match="conflicting buckets"):
            registry.histogram("repro_conflict_seconds", buckets=(1.0, 3.0))

    def test_default_registry_is_shared(self):
        assert get_registry() is get_registry()


class TestThreadSafety:
    def test_contended_increments_are_all_counted(self):
        registry = MetricsRegistry()
        counter = registry.counter("repro_contended_total", labels=("worker",))
        histogram = registry.histogram(
            "repro_contended_seconds", buckets=DEFAULT_BUCKETS
        )
        n_threads, n_incs = 8, 2_000
        barrier = threading.Barrier(n_threads)

        def hammer(worker: int) -> None:
            child = counter.labels(worker=worker % 2)
            barrier.wait()
            for i in range(n_incs):
                child.inc()
                histogram.observe(0.001 * (i % 7))

        threads = [
            threading.Thread(target=hammer, args=(w,)) for w in range(n_threads)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        total = sum(child.value for _, child in counter.children())
        assert total == n_threads * n_incs
        assert histogram.labels().snapshot()["count"] == n_threads * n_incs

    def test_export_during_contention_is_consistent(self):
        registry = MetricsRegistry()
        counter = registry.counter("repro_pair_a_total")
        mirror = registry.counter("repro_pair_b_total")
        stop = threading.Event()

        def writer() -> None:
            # a and b advance in lockstep *under the registry lock* one at a
            # time; a snapshot may only ever see a == b or a == b + 1.
            while not stop.is_set():
                counter.inc()
                mirror.inc()

        thread = threading.Thread(target=writer)
        thread.start()
        try:
            for _ in range(200):
                snapshot = registry.as_dict()
                a = snapshot["repro_pair_a_total"]["samples"][0]["value"]
                b = snapshot["repro_pair_b_total"]["samples"][0]["value"]
                assert a - b in (0.0, 1.0)
        finally:
            stop.set()
            thread.join()


class TestLatencyStatsBacking:
    def test_backed_histogram_shares_one_sample_list(self):
        registry = MetricsRegistry()
        stats = LatencyStats()
        histogram = registry.histogram(
            "repro_backed_seconds", buckets=(0.01, 0.1, 1.0)
        )
        histogram.bind(stats)
        stats.record(0.005)
        histogram.observe(0.05)  # delegates to stats.record
        assert stats.count == 2
        snap = histogram.labels().snapshot()
        assert snap["count"] == 2
        assert snap["buckets"] == [(0.01, 1), (0.1, 2), (1.0, 2)]
        assert snap["sum"] == pytest.approx(0.055)


class TestExposition:
    def _golden_registry(self) -> MetricsRegistry:
        registry = MetricsRegistry()
        requests = registry.counter(
            "repro_requests_total", "Requests served", labels=("tenant",)
        )
        requests.labels(tenant="default").inc(3)
        requests.labels(tenant='quo"te').inc()
        registry.gauge("repro_pending", "Queue depth").set(2)
        histogram = registry.histogram(
            "repro_latency_seconds", "Latency", buckets=(0.1, 1.0)
        )
        histogram.observe(0.05)
        histogram.observe(0.5)
        histogram.observe(5.0)
        return registry

    def test_prometheus_golden(self):
        text = self._golden_registry().render_prometheus()
        expected = "\n".join(
            [
                "# HELP repro_latency_seconds Latency",
                "# TYPE repro_latency_seconds histogram",
                'repro_latency_seconds_bucket{le="0.1"} 1',
                'repro_latency_seconds_bucket{le="1"} 2',
                'repro_latency_seconds_bucket{le="+Inf"} 3',
                "repro_latency_seconds_sum 5.55",
                "repro_latency_seconds_count 3",
                "# HELP repro_pending Queue depth",
                "# TYPE repro_pending gauge",
                "repro_pending 2",
                "# HELP repro_requests_total Requests served",
                "# TYPE repro_requests_total counter",
                'repro_requests_total{tenant="default"} 3',
                'repro_requests_total{tenant="quo\\"te"} 1',
                "",
            ]
        )
        assert text == expected

    def test_json_and_prometheus_agree(self):
        registry = self._golden_registry()
        payload = registry.as_dict()
        assert payload["repro_pending"]["samples"][0]["value"] == 2.0
        samples = {
            sample["labels"]["tenant"]: sample["value"]
            for sample in payload["repro_requests_total"]["samples"]
        }
        assert samples == {"default": 3.0, 'quo"te': 1.0}
        histogram = payload["repro_latency_seconds"]["samples"][0]
        assert histogram["count"] == 3
        assert histogram["buckets"] == [[0.1, 1], [1.0, 2]]
