"""Tracing-off overhead contract: instrumentation must be pay-as-you-go.

With no active trace, the engine's instrumentation is one contextvar read
per query (``current_span() -> None``) and one hoisted ``profiler.enabled``
check per kernel run.  This test measures a scan microbenchmark with the
instrumentation in place (tracing off) against a baseline where the hook is
monkeypatched to the cheapest possible stub, interleaved best-of-N so
machine drift cancels, and asserts the ratio stays under 2%.
"""

from __future__ import annotations

import gc
import time

import pytest

from repro.core import IndexParams, ReverseTopKEngine, build_index
from repro.graph import copying_web_graph, transition_matrix

N_NODES = 300
K = 10
N_QUERIES = 40
N_REPEATS = 7
MAX_OVERHEAD = 1.02  # < 2%


@pytest.fixture(scope="module")
def engine():
    graph = copying_web_graph(N_NODES, out_degree=4, seed=5)
    matrix = transition_matrix(graph)
    index = build_index(
        graph, IndexParams(capacity=20, hub_budget=5), transition=matrix
    )
    return ReverseTopKEngine(matrix, index)


def _run_queries(engine) -> float:
    start = time.perf_counter()
    for query in range(N_QUERIES):
        engine.query(query, K, update_index=False)
    return time.perf_counter() - start


def test_tracing_off_overhead_under_two_percent(engine, monkeypatch):
    import repro.core.query as query_module
    import repro.core.sharding as sharding_module

    # Warm up caches/allocator so neither side pays first-touch costs.
    _run_queries(engine)

    instrumented = []
    baseline = []
    for repeat in range(N_REPEATS):
        gc.collect()
        pair = {}
        with monkeypatch.context() as patch:
            # The entire tracing-off footprint of the scan path.
            patch.setattr(query_module, "current_span", lambda: None)
            patch.setattr(sharding_module, "current_span", lambda: None)
            if repeat % 2:  # alternate order so drift cancels
                pair["baseline"] = _run_queries(engine)
        pair["instrumented"] = _run_queries(engine)
        if "baseline" not in pair:
            with monkeypatch.context() as patch:
                patch.setattr(query_module, "current_span", lambda: None)
                patch.setattr(sharding_module, "current_span", lambda: None)
                pair["baseline"] = _run_queries(engine)
        instrumented.append(pair["instrumented"])
        baseline.append(pair["baseline"])

    # Two noise-robust views of the same contract: best-vs-best across all
    # repeats, and the best same-repeat pairing (immune to machine-speed
    # drift between early and late repeats).  The instrumentation's true
    # cost cannot exceed the smaller of the two.
    best_of_best = min(instrumented) / min(baseline)
    best_paired = min(i / b for i, b in zip(instrumented, baseline))
    ratio = min(best_of_best, best_paired)
    assert ratio < MAX_OVERHEAD, (
        f"tracing-off instrumentation costs {(ratio - 1) * 100:.2f}% "
        f"(limit {(MAX_OVERHEAD - 1) * 100:.0f}%): "
        f"instrumented={min(instrumented):.4f}s baseline={min(baseline):.4f}s"
    )
