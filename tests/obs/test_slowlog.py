"""Slow-query log tests: threshold gating, ring-buffer eviction, snapshot."""

from __future__ import annotations

import pytest

from repro.obs import SlowQueryLog


class TestGating:
    def test_threshold_gates_recording(self):
        log = SlowQueryLog(capacity=4, threshold_seconds=0.1)
        assert not log.record(0.05, query=1)
        assert log.record(0.1, query=2)  # at-threshold is recorded
        assert log.record(0.5, query=3)
        assert log.n_recorded == 2
        assert [entry["query"] for entry in log.entries()] == [3, 2]

    def test_none_threshold_disables(self):
        log = SlowQueryLog(capacity=4, threshold_seconds=None)
        assert not log.record(100.0)
        assert log.n_recorded == 0 and len(log) == 0

    def test_zero_threshold_records_everything(self):
        log = SlowQueryLog(capacity=4, threshold_seconds=0.0)
        assert log.record(0.0)
        assert log.n_recorded == 1

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            SlowQueryLog(capacity=0)
        with pytest.raises(ValueError):
            SlowQueryLog(threshold_seconds=-1.0)


class TestRingBuffer:
    def test_eviction_keeps_newest_and_total(self):
        log = SlowQueryLog(capacity=3, threshold_seconds=0.0)
        for i in range(7):
            log.record(float(i), query=i)
        assert log.n_recorded == 7  # evicted entries still counted
        assert len(log) == 3
        assert [entry["query"] for entry in log.entries()] == [6, 5, 4]

    def test_snapshot_shape(self):
        log = SlowQueryLog(capacity=2, threshold_seconds=0.0)
        log.record(0.2, tenant="a", query=1, k=5)
        snap = log.snapshot()
        assert snap["threshold_seconds"] == 0.0
        assert snap["capacity"] == 2
        assert snap["n_recorded"] == 1
        assert snap["n_retained"] == 1
        assert snap["entries"][0] == {
            "seconds": 0.2,
            "tenant": "a",
            "query": 1,
            "k": 5,
        }

    def test_clear_keeps_recorded_total(self):
        log = SlowQueryLog(capacity=2, threshold_seconds=0.0)
        log.record(0.1)
        log.clear()
        assert len(log) == 0
        assert log.n_recorded == 1

    def test_entries_are_copies(self):
        log = SlowQueryLog(capacity=2, threshold_seconds=0.0)
        log.record(0.1, query=1)
        log.entries()[0]["query"] = 999
        assert log.entries()[0]["query"] == 1
