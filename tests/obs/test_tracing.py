"""Tracing tests: span trees, contextvar propagation, the no-op fast path."""

from __future__ import annotations

import asyncio
import threading

from repro.obs import Span, Trace, current_span, trace_span
from repro.obs.tracing import _NOOP_CONTEXT


class TestNoopFastPath:
    def test_no_active_trace_yields_shared_noop(self):
        assert current_span() is None
        context = trace_span("anything", ignored=1)
        assert context is _NOOP_CONTEXT
        with context as span:
            assert span is None

    def test_instrumented_code_runs_unchanged_without_trace(self):
        with trace_span("scan") as span:
            value = 41 + 1
        assert span is None
        assert value == 42


class TestSpanTree:
    def test_nested_spans_build_a_tree_with_timings(self):
        with Trace("request", tenant="t") as trace:
            with trace_span("outer") as outer:
                with trace_span("inner", flag=True) as inner:
                    pass
                assert current_span() is outer
            assert current_span() is trace.root
        assert current_span() is None
        root = trace.root
        assert [child.name for child in root.children] == ["outer"]
        assert [child.name for child in root.children[0].children] == ["inner"]
        assert inner.annotations == {"flag": True}
        assert root.seconds >= outer.seconds >= inner.seconds >= 0.0

    def test_synthetic_record_and_graft(self):
        root = Span("request")
        root.record("stage.scan", 0.25, n_pruned=9)
        shared = Span("coalesce.batch", n_keys=3)
        shared.seconds = 0.5
        root.graft(shared)
        other = Span("request2")
        other.graft(shared)
        assert root.find("stage.scan").seconds == 0.25
        assert root.find("coalesce.batch") is shared
        assert other.find("coalesce.batch") is shared
        tree = root.to_dict()
        assert tree["children"][0]["annotations"] == {"n_pruned": 9}

    def test_trace_activate_deactivate_idempotent(self):
        trace = Trace("request")
        trace.activate()
        trace.activate()
        assert current_span() is trace.root
        trace.deactivate()
        trace.deactivate()
        assert current_span() is None
        assert trace.root.seconds > 0.0


class TestPropagation:
    def test_concurrent_asyncio_tasks_do_not_bleed(self):
        async def request(name: str) -> list:
            with Trace(name):
                with trace_span(f"{name}.work"):
                    await asyncio.sleep(0.001)
                    assert current_span().name == f"{name}.work"
                return [s.name for s in current_span().children]

        async def scenario():
            return await asyncio.gather(*[request(f"r{i}") for i in range(8)])

        for names, i in zip(asyncio.run(scenario()), range(8)):
            assert names == [f"r{i}.work"]

    def test_worker_thread_needs_explicit_activation(self):
        # Plain threads share no context with the caller: without an
        # explicit activation the worker sees no active span...
        seen = {}

        def worker() -> None:
            seen["bare"] = current_span()

        with Trace("request"):
            thread = threading.Thread(target=worker)
            thread.start()
            thread.join()
        assert seen["bare"] is None

        # ...and with one (the coalescer's batch-runner pattern), spans
        # created in the worker attach to the activated trace.
        batch = Trace("coalesce.batch")

        def traced_worker() -> None:
            with batch:
                with trace_span("engine.scan"):
                    pass

        thread = threading.Thread(target=traced_worker)
        thread.start()
        thread.join()
        assert [child.name for child in batch.root.children] == ["engine.scan"]
