"""Profiler tests: null-sink contract, kernel hooks, registry mirroring."""

from __future__ import annotations

import pickle

import numpy as np

from repro.core import IndexParams, PropagationKernel, build_index
from repro.graph import transition_matrix
from repro.obs import NULL_PROFILER, KernelProfiler, MetricsRegistry, NullProfiler


def _kernel(graph, profiler=None):
    matrix = transition_matrix(graph)
    hub_mask = np.zeros(graph.n_nodes, dtype=bool)
    hub_mask[:3] = True
    params = IndexParams(capacity=10, hub_budget=3)
    return PropagationKernel(matrix, hub_mask, params, profiler=profiler), matrix


class TestNullProfiler:
    def test_disabled_and_callable(self):
        assert NULL_PROFILER.enabled is False
        NULL_PROFILER.on_block_iteration(backend="x", n_live=1, seconds=0.0)
        NULL_PROFILER.on_spill(n_sources=1, seconds=0.0)
        NULL_PROFILER.on_step(dense=True)
        NULL_PROFILER.on_run(backend="x", n_sources=1, plane_bytes=0)

    def test_kernel_defaults_to_null_sink(self, small_web_graph):
        kernel, _ = _kernel(small_web_graph)
        assert kernel.profiler is NULL_PROFILER

    def test_picklable_with_kernel(self, small_web_graph):
        kernel, _ = _kernel(small_web_graph)
        clone = pickle.loads(pickle.dumps(kernel))
        assert isinstance(clone.profiler, NullProfiler)
        assert clone.profiler.enabled is False


class TestKernelProfiler:
    def test_run_populates_aggregates(self, small_web_graph):
        profiler = KernelProfiler()
        kernel, _ = _kernel(small_web_graph, profiler=profiler)
        sources = np.arange(3, 13, dtype=np.int64)  # non-hub nodes
        kernel.run(sources)
        assert profiler.n_runs == 1
        assert profiler.n_sources == 10
        assert profiler.n_block_iterations > 0
        assert profiler.n_live_columns >= profiler.n_block_iterations
        assert profiler.product_seconds > 0.0
        assert profiler.peak_plane_bytes > 0
        snapshot = profiler.as_dict()
        assert snapshot["n_runs"] == 1
        assert 0.0 <= snapshot["workspace_hit_rate"] <= 1.0

    def test_profiled_run_is_bit_identical(self, small_web_graph):
        plain_kernel, _ = _kernel(small_web_graph)
        profiled_kernel, _ = _kernel(
            small_web_graph, profiler=KernelProfiler()
        )
        sources = np.arange(3, 15, dtype=np.int64)
        plain = plain_kernel.run(sources)
        profiled = profiled_kernel.run(sources)
        assert len(plain) == len(profiled)
        for expected, observed in zip(plain, profiled):
            assert expected.residual == observed.residual
            assert expected.retained == observed.retained
            assert expected.hub_ink == observed.hub_ink
            np.testing.assert_array_equal(
                expected.lower_bounds, observed.lower_bounds
            )

    def test_workspace_reuse_shows_up_across_runs(self, small_web_graph):
        profiler = KernelProfiler()
        kernel, _ = _kernel(small_web_graph, profiler=profiler)
        sources = np.arange(3, 11, dtype=np.int64)
        kernel.run(sources)
        kernel.run(sources)  # second run reuses the pooled planes
        assert profiler.workspace_hits > 0
        assert profiler.workspace_hit_rate > 0.0

    def test_registry_mirroring(self, small_web_graph):
        registry = MetricsRegistry()
        profiler = KernelProfiler(registry=registry)
        kernel, _ = _kernel(small_web_graph, profiler=profiler)
        kernel.run(np.arange(3, 9, dtype=np.int64))
        kernel.run(np.arange(3, 9, dtype=np.int64))
        payload = registry.as_dict()
        runs = payload["repro_kernel_runs_total"]["samples"]
        assert sum(sample["value"] for sample in runs) == 2
        iterations = payload["repro_kernel_block_iterations_total"]["samples"]
        assert sum(s["value"] for s in iterations) == profiler.n_block_iterations
        # The monotonic mirror of the cumulative workspace snapshot matches
        # the profiler's own (latest-snapshot) counters.
        hits = payload["repro_kernel_workspace_hits_total"]["samples"][0]["value"]
        assert hits == profiler.workspace_hits

    def test_build_emits_into_default_registry(self, small_web_graph):
        from repro.obs import get_registry

        before = (
            get_registry()
            .counter("repro_index_builds_total", labels=("backend",))
            .labels(backend="vectorized")
            .value
        )
        build_index(small_web_graph, IndexParams(capacity=10, hub_budget=3))
        after = (
            get_registry()
            .counter("repro_index_builds_total", labels=("backend",))
            .labels(backend="vectorized")
            .value
        )
        assert after == before + 1
