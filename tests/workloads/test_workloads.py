"""Tests for query workload generators and the parameter sweep runner."""

import numpy as np
import pytest

from repro.workloads import (
    ParameterSweep,
    all_nodes_workload,
    degree_weighted_query_workload,
    uniform_query_workload,
)


class TestQueryWorkloads:
    def test_uniform_reproducible(self, small_web_graph):
        a = uniform_query_workload(small_web_graph, 20, seed=1)
        b = uniform_query_workload(small_web_graph, 20, seed=1)
        np.testing.assert_array_equal(a.queries, b.queries)

    def test_uniform_within_range(self, small_web_graph):
        workload = uniform_query_workload(small_web_graph, 50, seed=2)
        assert workload.queries.min() >= 0
        assert workload.queries.max() < small_web_graph.n_nodes

    def test_uniform_without_replacement_unique(self, small_web_graph):
        workload = uniform_query_workload(small_web_graph, 30, seed=3, replace=False)
        assert len(set(workload.queries.tolist())) == len(workload)

    def test_accepts_plain_node_count(self):
        workload = uniform_query_workload(100, 10, seed=0)
        assert workload.queries.max() < 100

    def test_degree_weighted_prefers_high_degree(self, small_web_graph):
        workload = degree_weighted_query_workload(small_web_graph, 400, seed=4)
        counts = np.bincount(workload.queries, minlength=small_web_graph.n_nodes)
        degrees = small_web_graph.in_degree
        top_nodes = np.argsort(-degrees)[:5]
        bottom_nodes = np.argsort(degrees)[:5]
        assert counts[top_nodes].mean() > counts[bottom_nodes].mean()

    def test_all_nodes_covers_everything(self, small_web_graph):
        workload = all_nodes_workload(small_web_graph, k=3)
        assert len(workload) == small_web_graph.n_nodes
        assert set(workload) == set(range(small_web_graph.n_nodes))

    def test_with_k_changes_only_depth(self, small_web_graph):
        workload = uniform_query_workload(small_web_graph, 10, k=5, seed=1)
        deeper = workload.with_k(20)
        assert deeper.k == 20
        np.testing.assert_array_equal(deeper.queries, workload.queries)

    def test_iteration_yields_ints(self, small_web_graph):
        workload = uniform_query_workload(small_web_graph, 5, seed=0)
        assert all(isinstance(query, int) for query in workload)


class TestParameterSweep:
    def test_cartesian_product(self):
        sweep = ParameterSweep({"a": [1, 2], "b": ["x", "y", "z"]})
        assert len(sweep.points()) == 6

    def test_run_collects_metrics(self):
        sweep = ParameterSweep({"k": [1, 2, 3]})
        points = sweep.run(lambda k: {"square": float(k * k)})
        assert [p.metrics["square"] for p in points] == [1.0, 4.0, 9.0]

    def test_point_item_access(self):
        sweep = ParameterSweep({"k": [4]})
        point = sweep.run(lambda k: {"value": 1.0})[0]
        assert point["k"] == 4
        assert point["value"] == 1.0

    def test_on_point_callback(self):
        seen = []
        sweep = ParameterSweep({"k": [1, 2]})
        sweep.run(lambda k: {"v": float(k)}, on_point=seen.append)
        assert len(seen) == 2

    def test_empty_axes_rejected(self):
        with pytest.raises(ValueError):
            ParameterSweep({})
        with pytest.raises(ValueError):
            ParameterSweep({"k": []})


class TestZipfianWorkload:
    def test_reproducible(self, small_web_graph):
        from repro.workloads import zipfian_query_workload

        a = zipfian_query_workload(small_web_graph, 50, seed=5)
        b = zipfian_query_workload(small_web_graph, 50, seed=5)
        np.testing.assert_array_equal(a.queries, b.queries)

    def test_repeat_heavy(self, small_web_graph):
        from repro.workloads import zipfian_query_workload

        workload = zipfian_query_workload(
            small_web_graph, 200, seed=1, hot_fraction=0.1
        )
        unique = len(set(workload.queries.tolist()))
        # Far fewer unique queries than requests: that is the point.
        assert unique <= len(workload) // 3

    def test_hot_pool_bounds_queries(self):
        from repro.workloads import zipfian_query_workload

        workload = zipfian_query_workload(1000, 100, seed=2, hot_fraction=0.02)
        assert len(set(workload.queries.tolist())) <= 20
        assert workload.queries.min() >= 0
        assert workload.queries.max() < 1000

    def test_more_skew_fewer_uniques(self):
        from repro.workloads import zipfian_query_workload

        mild = zipfian_query_workload(500, 300, seed=3, exponent=0.5, hot_fraction=0.2)
        steep = zipfian_query_workload(500, 300, seed=3, exponent=2.0, hot_fraction=0.2)
        assert len(set(steep.queries.tolist())) < len(set(mild.queries.tolist()))

    def test_invalid_parameters_rejected(self):
        from repro.workloads import zipfian_query_workload

        with pytest.raises(ValueError):
            zipfian_query_workload(100, 10, exponent=0.0)
        with pytest.raises(ValueError):
            zipfian_query_workload(100, 10, hot_fraction=0.0)
        with pytest.raises(ValueError):
            zipfian_query_workload(100, 10, hot_fraction=1.5)


class TestChurnWorkload:
    def _graph(self):
        from repro.graph import copying_web_graph

        return copying_web_graph(60, out_degree=3, seed=17)

    def test_composition_and_determinism(self):
        from repro.workloads import QueryEvent, UpdateEvent, churn_workload

        graph = self._graph()
        a = churn_workload(graph, 30, 5, k=6, batch_size=3, seed=4)
        b = churn_workload(graph, 30, 5, k=6, batch_size=3, seed=4)
        assert a.events == b.events
        assert a.n_queries == 30
        assert a.n_update_batches == 5
        assert a.n_updates <= 15
        assert all(
            isinstance(event, (QueryEvent, UpdateEvent)) for event in a
        )
        assert all(event.k == 6 for event in a if isinstance(event, QueryEvent))
        assert len(a.queries()) == 30

    def test_updates_are_valid_in_stream_order(self):
        from repro.dynamic import DynamicGraph
        from repro.workloads import UpdateEvent, churn_workload

        graph = self._graph()
        workload = churn_workload(graph, 40, 8, batch_size=4, seed=9)
        dynamic = DynamicGraph(graph)
        for event in workload:
            if isinstance(event, UpdateEvent):
                dynamic.apply_updates(event.updates)  # raises if invalid
        assert dynamic.n_edges > 0

    def test_update_batches_are_interleaved(self):
        from repro.workloads import UpdateEvent, churn_workload

        workload = churn_workload(self._graph(), 40, 4, seed=5)
        positions = [
            position
            for position, event in enumerate(workload)
            if isinstance(event, UpdateEvent)
        ]
        assert len(positions) == 4
        # spread through the stream, not clumped at either end
        assert positions[0] < len(workload) / 2
        assert positions[-1] > len(workload) / 2

    def test_zero_update_batches(self):
        from repro.workloads import churn_workload

        workload = churn_workload(self._graph(), 10, 0, seed=6)
        assert workload.n_update_batches == 0
        assert workload.n_queries == 10

    def test_invalid_fractions_rejected(self):
        from repro.workloads import churn_workload

        with pytest.raises(ValueError):
            churn_workload(self._graph(), 10, 2, add_fraction=0.8, remove_fraction=0.5)
        with pytest.raises(ValueError):
            churn_workload(self._graph(), 10, -1)

    def test_more_batches_than_queries_rejected(self):
        from repro.workloads import churn_workload

        with pytest.raises(ValueError, match="must not exceed"):
            churn_workload(self._graph(), 2, 5, seed=1)
