"""Memory regression: ``GraphBuilder.build`` must not copy the edge arrays.

The builder stores edges in typed ``array.array`` buffers (24 bytes per
edge) and ``build()`` views them zero-copy via ``np.frombuffer``.  The
historical failure mode was ``np.asarray(list_of_boxed_values)`` — a second
full copy of every coordinate array held live during CSR construction
(~60+ bytes per edge of peak traffic).  The test pins peak allocation
during ``build()`` to ~1x the edge-array storage.
"""

import tracemalloc

import numpy as np
import pytest

from repro.graph.builder import GraphBuilder

N_EDGES = 30_000
#: Bytes per edge of builder storage (int64 source + int64 target + float64).
EDGE_STORAGE = 24
#: Allowed peak-allocation during build(), as a multiple of the edge storage.
#: Zero-copy lands ~1.05x (CSR output + dedup scratch); the old list-copy
#: path measured ~2.6x.
PEAK_FACTOR = 1.6


@pytest.fixture(scope="module")
def loaded_builder():
    # Node ids far above 256 and non-integral weights so CPython's small-int
    # and cached-float interning cannot mask per-object allocations.
    rng = np.random.default_rng(0)
    sources = rng.integers(300, 5_000, size=N_EDGES).tolist()
    targets = rng.integers(300, 5_000, size=N_EDGES).tolist()
    weights = (rng.random(N_EDGES) + 0.5).tolist()
    builder = GraphBuilder()
    for source, target, weight in zip(sources, targets, weights):
        builder.add_edge(source, target, weight)
    return builder


def test_build_peak_allocation_is_one_edge_array(loaded_builder):
    loaded_builder.build()  # warm scipy/numpy internals out of the measurement
    tracemalloc.start()
    try:
        graph = loaded_builder.build()
        _, peak = tracemalloc.get_traced_memory()
    finally:
        tracemalloc.stop()
    assert graph.n_edges > 0
    budget = PEAK_FACTOR * EDGE_STORAGE * N_EDGES
    assert peak <= budget, (
        f"build() allocated {peak / N_EDGES:.1f} B/edge at peak "
        f"(budget {budget / N_EDGES:.1f} B/edge) — is it copying the edge "
        f"arrays again?"
    )


def test_storage_is_compact_typed_arrays(loaded_builder):
    # itemsize-based accounting: the accumulating buffers themselves must be
    # 8-byte scalars, not lists of boxed Python objects.
    assert loaded_builder._sources.itemsize == 8
    assert loaded_builder._targets.itemsize == 8
    assert loaded_builder._weights.itemsize == 8


def test_build_then_mutate_then_rebuild():
    # The zero-copy views must not pin the buffers (array.array refuses to
    # grow while a view is exported) — adding edges after build() must work.
    builder = GraphBuilder()
    builder.add_edge(0, 1)
    first = builder.build()
    builder.add_edge(1, 2, 2.5)
    second = builder.build()
    assert first.n_edges == 1
    assert second.n_edges == 2
    assert second.adjacency[1, 2] == 2.5
