"""Unit tests for GraphBuilder and from_edges."""

import pytest

from repro.exceptions import GraphError
from repro.graph import GraphBuilder, from_edges


class TestGraphBuilder:
    def test_basic_build(self):
        builder = GraphBuilder()
        builder.add_edge("a", "b")
        builder.add_edge("b", "c", weight=2.0)
        graph = builder.build()
        assert graph.n_nodes == 3
        assert graph.n_edges == 2
        assert graph.edge_weight(1, 2) == pytest.approx(2.0)

    def test_node_ids_in_insertion_order(self):
        builder = GraphBuilder()
        builder.add_edge("x", "y")
        builder.add_edge("z", "x")
        mapping = builder.node_mapping()
        assert mapping == {"x": 0, "y": 1, "z": 2}

    def test_duplicate_edges_merge_weights(self):
        builder = GraphBuilder()
        builder.add_edge(0, 1, 1.0)
        builder.add_edge(0, 1, 3.0)
        graph = builder.build()
        assert graph.n_edges == 1
        assert graph.edge_weight(0, 1) == pytest.approx(4.0)

    def test_add_node_idempotent(self):
        builder = GraphBuilder()
        first = builder.add_node("a")
        second = builder.add_node("a")
        assert first == second
        assert builder.n_nodes == 1

    def test_add_edges_mixed_arity(self):
        builder = GraphBuilder()
        builder.add_edges([("a", "b"), ("b", "c", 5.0)])
        graph = builder.build()
        assert graph.n_edges == 2
        assert graph.edge_weight(1, 2) == pytest.approx(5.0)

    def test_add_edges_rejects_bad_tuple(self):
        builder = GraphBuilder()
        with pytest.raises(GraphError):
            builder.add_edges([("a",)])

    def test_undirected_edge_adds_both_directions(self):
        builder = GraphBuilder()
        builder.add_undirected_edge("a", "b", 2.0)
        graph = builder.build()
        assert graph.has_edge(0, 1)
        assert graph.has_edge(1, 0)

    def test_negative_weight_rejected(self):
        builder = GraphBuilder()
        with pytest.raises(GraphError):
            builder.add_edge("a", "b", -1.0)

    def test_self_loop_suppression(self):
        builder = GraphBuilder(allow_self_loops=False)
        builder.add_edge("a", "a")
        builder.add_edge("a", "b")
        graph = builder.build()
        assert not graph.has_edge(0, 0)

    def test_empty_build_rejected(self):
        with pytest.raises(GraphError):
            GraphBuilder().build()

    def test_default_names_from_keys(self):
        builder = GraphBuilder()
        builder.add_edge("alice", "bob")
        graph = builder.build()
        assert graph.name_of(0) == "alice"
        assert graph.node_id("bob") == 1

    def test_isolated_node_included(self):
        builder = GraphBuilder()
        builder.add_node("lonely")
        builder.add_edge("a", "b")
        graph = builder.build()
        assert graph.n_nodes == 3


class TestFromEdges:
    def test_basic(self):
        graph = from_edges([(0, 1), (1, 2), (2, 0)])
        assert graph.n_nodes == 3
        assert graph.n_edges == 3

    def test_weighted_edges(self):
        graph = from_edges([(0, 1, 2.5)])
        assert graph.edge_weight(0, 1) == pytest.approx(2.5)

    def test_n_nodes_padding(self):
        graph = from_edges([(0, 1)], n_nodes=5)
        assert graph.n_nodes == 5
        assert graph.out_degree[4] == 0

    def test_rejects_negative_ids(self):
        with pytest.raises(GraphError):
            from_edges([(-1, 0)])

    def test_rejects_empty(self):
        with pytest.raises(GraphError):
            from_edges([])

    def test_self_loop_filtering(self):
        graph = from_edges([(0, 0), (0, 1)], allow_self_loops=False)
        assert not graph.has_edge(0, 0)
        assert graph.has_edge(0, 1)
