"""Unit tests for GraphBuilder and from_edges."""

import pytest

from repro.exceptions import GraphError
from repro.graph import GraphBuilder, from_edges


class TestGraphBuilder:
    def test_basic_build(self):
        builder = GraphBuilder()
        builder.add_edge("a", "b")
        builder.add_edge("b", "c", weight=2.0)
        graph = builder.build()
        assert graph.n_nodes == 3
        assert graph.n_edges == 2
        assert graph.edge_weight(1, 2) == pytest.approx(2.0)

    def test_node_ids_in_insertion_order(self):
        builder = GraphBuilder()
        builder.add_edge("x", "y")
        builder.add_edge("z", "x")
        mapping = builder.node_mapping()
        assert mapping == {"x": 0, "y": 1, "z": 2}

    def test_duplicate_edges_merge_weights(self):
        builder = GraphBuilder()
        builder.add_edge(0, 1, 1.0)
        builder.add_edge(0, 1, 3.0)
        graph = builder.build()
        assert graph.n_edges == 1
        assert graph.edge_weight(0, 1) == pytest.approx(4.0)

    def test_add_node_idempotent(self):
        builder = GraphBuilder()
        first = builder.add_node("a")
        second = builder.add_node("a")
        assert first == second
        assert builder.n_nodes == 1

    def test_add_edges_mixed_arity(self):
        builder = GraphBuilder()
        builder.add_edges([("a", "b"), ("b", "c", 5.0)])
        graph = builder.build()
        assert graph.n_edges == 2
        assert graph.edge_weight(1, 2) == pytest.approx(5.0)

    def test_add_edges_rejects_bad_tuple(self):
        builder = GraphBuilder()
        with pytest.raises(GraphError):
            builder.add_edges([("a",)])

    def test_undirected_edge_adds_both_directions(self):
        builder = GraphBuilder()
        builder.add_undirected_edge("a", "b", 2.0)
        graph = builder.build()
        assert graph.has_edge(0, 1)
        assert graph.has_edge(1, 0)

    def test_negative_weight_rejected(self):
        builder = GraphBuilder()
        with pytest.raises(GraphError):
            builder.add_edge("a", "b", -1.0)

    def test_self_loop_suppression(self):
        builder = GraphBuilder(allow_self_loops=False)
        builder.add_edge("a", "a")
        builder.add_edge("a", "b")
        graph = builder.build()
        assert not graph.has_edge(0, 0)

    def test_empty_build_rejected(self):
        with pytest.raises(GraphError):
            GraphBuilder().build()

    def test_default_names_from_keys(self):
        builder = GraphBuilder()
        builder.add_edge("alice", "bob")
        graph = builder.build()
        assert graph.name_of(0) == "alice"
        assert graph.node_id("bob") == 1

    def test_isolated_node_included(self):
        builder = GraphBuilder()
        builder.add_node("lonely")
        builder.add_edge("a", "b")
        graph = builder.build()
        assert graph.n_nodes == 3


class TestFromEdges:
    def test_basic(self):
        graph = from_edges([(0, 1), (1, 2), (2, 0)])
        assert graph.n_nodes == 3
        assert graph.n_edges == 3

    def test_weighted_edges(self):
        graph = from_edges([(0, 1, 2.5)])
        assert graph.edge_weight(0, 1) == pytest.approx(2.5)

    def test_n_nodes_padding(self):
        graph = from_edges([(0, 1)], n_nodes=5)
        assert graph.n_nodes == 5
        assert graph.out_degree[4] == 0

    def test_rejects_negative_ids(self):
        with pytest.raises(GraphError):
            from_edges([(-1, 0)])

    def test_rejects_empty(self):
        with pytest.raises(GraphError):
            from_edges([])

    def test_self_loop_filtering(self):
        graph = from_edges([(0, 0), (0, 1)], allow_self_loops=False)
        assert not graph.has_edge(0, 0)
        assert graph.has_edge(0, 1)


class TestOnDuplicatePolicy:
    def test_sum_is_the_default(self):
        builder = GraphBuilder()
        assert builder.on_duplicate == "sum"
        builder.add_edge(0, 1, 1.0)
        builder.add_edge(0, 1, 3.0)
        assert builder.build().edge_weight(0, 1) == pytest.approx(4.0)

    def test_last_keeps_most_recent_weight(self):
        builder = GraphBuilder(on_duplicate="last")
        builder.add_edge(0, 1, 1.0)
        builder.add_edge(0, 1, 3.0)
        builder.add_edge(0, 1, 0.5)
        graph = builder.build()
        assert graph.n_edges == 1
        assert graph.edge_weight(0, 1) == pytest.approx(0.5)

    def test_last_does_not_double_count_edges(self):
        builder = GraphBuilder(on_duplicate="last")
        builder.add_edge("a", "b")
        builder.add_edge("a", "b", 2.0)
        builder.add_edge("b", "c")
        assert builder.n_edges == 2

    def test_error_raises_on_second_insertion(self):
        builder = GraphBuilder(on_duplicate="error")
        builder.add_edge("a", "b")
        with pytest.raises(GraphError, match="duplicate edge"):
            builder.add_edge("a", "b", 2.0)

    def test_error_allows_distinct_edges(self):
        builder = GraphBuilder(on_duplicate="error")
        builder.add_edge(0, 1)
        builder.add_edge(1, 0)
        builder.add_edge(0, 2)
        assert builder.build().n_edges == 3

    def test_reverse_direction_is_not_a_duplicate(self):
        builder = GraphBuilder(on_duplicate="last")
        builder.add_edge(0, 1, 1.0)
        builder.add_edge(1, 0, 9.0)
        graph = builder.build()
        assert graph.edge_weight(0, 1) == pytest.approx(1.0)
        assert graph.edge_weight(1, 0) == pytest.approx(9.0)

    def test_unknown_policy_rejected(self):
        with pytest.raises(GraphError):
            GraphBuilder(on_duplicate="mean")

    def test_policies_agree_without_duplicates(self):
        edges = [("a", "b", 1.0), ("b", "c", 2.0), ("c", "a", 0.5)]
        graphs = []
        for policy in GraphBuilder.ON_DUPLICATE:
            builder = GraphBuilder(on_duplicate=policy)
            builder.add_edges(edges)
            graphs.append(builder.build())
        assert graphs[0] == graphs[1] == graphs[2]


class TestNonFiniteWeights:
    def test_add_edge_rejects_nan_and_inf(self):
        builder = GraphBuilder()
        with pytest.raises(GraphError, match="finite"):
            builder.add_edge("a", "b", float("nan"))
        with pytest.raises(GraphError, match="finite"):
            builder.add_edge("a", "b", float("inf"))
