"""Dataset download/cache layer: file:// fetch, checksums, offline fallback."""

import gzip

import pytest

from repro.graph import datasets
from repro.graph.download import (
    CACHE_ENV,
    OFFLINE_ENV,
    REMOTE_DATASETS,
    DatasetUnavailableError,
    RemoteDataset,
    cache_dir,
    dataset_cached,
    fetch_dataset,
    file_sha256,
    is_offline,
)


@pytest.fixture()
def cache(tmp_path, monkeypatch):
    directory = tmp_path / "data-cache"
    monkeypatch.setenv(CACHE_ENV, str(directory))
    monkeypatch.delenv(OFFLINE_ENV, raising=False)
    return directory


@pytest.fixture()
def tiny_remote(tmp_path):
    source = tmp_path / "upstream" / "tiny.txt.gz"
    source.parent.mkdir()
    with gzip.open(source, "wt", encoding="utf-8") as handle:
        handle.write("# tiny\n0 1\n1 2\n2 0\n")
    return RemoteDataset(
        name="tiny", url=source.as_uri(), filename="tiny.txt.gz"
    )


class TestCacheDir:
    def test_honors_repro_data_dir(self, cache):
        assert cache_dir() == cache
        assert cache.is_dir()

    def test_offline_env_parsing(self, monkeypatch):
        for value, expected in (("1", True), ("true", True), ("YES", True),
                                ("0", False), ("", False), ("no", False)):
            monkeypatch.setenv(OFFLINE_ENV, value)
            assert is_offline() is expected


class TestFetch:
    def test_file_url_fetch_writes_cache_and_sidecar(self, cache, tiny_remote):
        path = fetch_dataset(tiny_remote)
        assert path == cache / "tiny.txt.gz"
        sidecar = path.with_name(path.name + ".sha256")
        assert sidecar.read_text().strip() == file_sha256(path)

    def test_cache_hit_does_not_refetch(self, cache, tiny_remote, tmp_path):
        first = fetch_dataset(tiny_remote)
        # Nuke the upstream: a second fetch must be served from cache.
        (tmp_path / "upstream" / "tiny.txt.gz").unlink()
        assert fetch_dataset(tiny_remote) == first

    def test_corrupted_cache_is_detected(self, cache, tiny_remote):
        path = fetch_dataset(tiny_remote)
        path.write_bytes(b"garbage")
        with pytest.raises(DatasetUnavailableError, match="checksum"):
            fetch_dataset(tiny_remote)

    def test_pinned_checksum_mismatch_leaves_no_cache_entry(self, cache, tmp_path):
        source = tmp_path / "upstream" / "tiny.txt.gz"
        pinned = RemoteDataset(
            name="tiny", url=source.as_uri(), filename="tiny.txt.gz",
            sha256="0" * 64,
        )
        with pytest.raises(DatasetUnavailableError, match="checksum"):
            fetch_dataset(pinned)
        assert not (cache / "tiny.txt.gz").exists()
        assert not (cache / "tiny.txt.gz.sha256").exists()

    def test_pinned_checksum_match(self, cache, tiny_remote, tmp_path):
        digest = file_sha256(tmp_path / "upstream" / "tiny.txt.gz")
        pinned = RemoteDataset(
            name=tiny_remote.name, url=tiny_remote.url,
            filename=tiny_remote.filename, sha256=digest,
        )
        assert fetch_dataset(pinned).exists()

    def test_offline_with_missing_file_raises(self, cache, tiny_remote, monkeypatch):
        monkeypatch.setenv(OFFLINE_ENV, "1")
        with pytest.raises(DatasetUnavailableError, match="offline|forbids"):
            fetch_dataset(tiny_remote)

    def test_offline_serves_cached_file(self, cache, tiny_remote, monkeypatch):
        path = fetch_dataset(tiny_remote)
        monkeypatch.setenv(OFFLINE_ENV, "1")
        assert fetch_dataset(tiny_remote) == path

    def test_unknown_name_lists_available(self, cache):
        with pytest.raises(KeyError, match="web-google"):
            fetch_dataset("no-such-dataset")

    def test_registry_covers_paper_snap_datasets(self):
        assert {"web-google", "web-stanford", "epinions"} <= set(REMOTE_DATASETS)
        for spec in REMOTE_DATASETS.values():
            assert spec.url.startswith("https://snap.stanford.edu/")
            assert spec.filename.endswith(".txt.gz")


class TestLoadDatasetRouting:
    def test_default_source_is_synthetic(self, cache, monkeypatch):
        monkeypatch.delenv(datasets.SOURCE_ENV, raising=False)
        graph = datasets.load_dataset("web-google", scale=0.05)
        twin = datasets.load_dataset("web-google", scale=0.05, source="synthetic")
        assert (graph.adjacency != twin.adjacency).nnz == 0

    def test_auto_falls_back_to_synthetic_when_offline(self, cache, monkeypatch):
        monkeypatch.setenv(OFFLINE_ENV, "1")
        graph = datasets.load_dataset("web-google", scale=0.05, source="auto")
        twin = datasets.load_dataset("web-google", scale=0.05, source="synthetic")
        assert (graph.adjacency != twin.adjacency).nnz == 0

    def test_real_raises_when_offline_and_uncached(self, cache, monkeypatch):
        monkeypatch.setenv(OFFLINE_ENV, "1")
        with pytest.raises(DatasetUnavailableError):
            datasets.load_dataset("web-google", source="real")

    def test_auto_uses_cached_real_dataset(self, cache, tiny_remote, monkeypatch):
        # Drop a fake "web-google" into the cache; auto must stream it even
        # when offline.
        spec = REMOTE_DATASETS["web-google"]
        cache.mkdir(parents=True, exist_ok=True)
        with gzip.open(cache / spec.filename, "wt", encoding="utf-8") as handle:
            handle.write("# fake snapshot\n0 1\n1 2\n2 0\n3 1\n")
        monkeypatch.setenv(OFFLINE_ENV, "1")
        assert dataset_cached("web-google")
        graph = datasets.load_dataset("web-google", source="auto")
        assert graph.n_nodes == 4
        assert graph.n_edges == 4

    def test_real_via_source_env(self, cache, monkeypatch):
        spec = REMOTE_DATASETS["epinions"]
        cache.mkdir(parents=True, exist_ok=True)
        with gzip.open(cache / spec.filename, "wt", encoding="utf-8") as handle:
            handle.write("0 1\n1 0\n")
        monkeypatch.setenv(datasets.SOURCE_ENV, "real")
        graph = datasets.load_dataset("epinions")
        assert graph.n_nodes == 2

    def test_invalid_source_rejected(self, cache):
        with pytest.raises(ValueError, match="source"):
            datasets.load_dataset("web-google", source="imaginary")


class TestSyntheticEdgeListWriter:
    def test_deterministic_and_streamable(self, tmp_path):
        from repro.graph.io import stream_edge_list

        path_a = tmp_path / "a.txt"
        path_b = tmp_path / "b.txt"
        path_c = tmp_path / "c.txt"
        n_a = datasets.write_synthetic_edge_list(
            path_a, n_nodes=500, avg_out_degree=4.0, seed=9
        )
        n_b = datasets.write_synthetic_edge_list(
            path_b, n_nodes=500, avg_out_degree=4.0, seed=9
        )
        datasets.write_synthetic_edge_list(
            path_c, n_nodes=500, avg_out_degree=4.0, seed=10
        )
        assert n_a == n_b == 2000
        assert path_a.read_bytes() == path_b.read_bytes()
        assert path_a.read_bytes() != path_c.read_bytes()
        graph = stream_edge_list(path_a, n_nodes=500)
        assert graph.n_nodes == 500
        # duplicates collapse, so n_edges <= lines written
        assert 0 < graph.n_edges <= 2000
