"""Unit tests for the DiGraph container."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.exceptions import GraphError, NodeNotFoundError
from repro.graph import DiGraph, ring_graph, star_graph


@pytest.fixture()
def triangle() -> DiGraph:
    matrix = np.array(
        [
            [0.0, 1.0, 0.0],
            [0.0, 0.0, 2.0],
            [3.0, 0.0, 0.0],
        ]
    )
    return DiGraph(matrix, node_names=["a", "b", "c"])


class TestConstruction:
    def test_counts(self, triangle):
        assert triangle.n_nodes == 3
        assert triangle.n_edges == 3

    def test_rejects_non_square(self):
        with pytest.raises(GraphError):
            DiGraph(np.zeros((2, 3)))

    def test_rejects_negative_weights(self):
        with pytest.raises(GraphError):
            DiGraph(np.array([[0.0, -1.0], [0.0, 0.0]]))

    def test_rejects_wrong_number_of_names(self):
        with pytest.raises(GraphError):
            DiGraph(np.zeros((2, 2)), node_names=["only-one"])

    def test_duplicate_edges_are_summed(self):
        rows = np.array([0, 0])
        cols = np.array([1, 1])
        data = np.array([1.0, 2.0])
        graph = DiGraph(sp.csr_matrix((data, (rows, cols)), shape=(2, 2)))
        assert graph.n_edges == 1
        assert graph.edge_weight(0, 1) == pytest.approx(3.0)

    def test_explicit_zeros_are_dropped(self):
        rows = np.array([0, 1])
        cols = np.array([1, 0])
        data = np.array([1.0, 0.0])
        graph = DiGraph(sp.csr_matrix((data, (rows, cols)), shape=(2, 2)))
        assert graph.n_edges == 1

    def test_len_and_contains(self, triangle):
        assert len(triangle) == 3
        assert 0 in triangle
        assert 2 in triangle
        assert 3 not in triangle
        assert "a" not in triangle

    def test_repr_mentions_sizes(self, triangle):
        text = repr(triangle)
        assert "3" in text
        assert "DiGraph" in text

    def test_weighted_flag(self, triangle):
        assert triangle.is_weighted
        assert not ring_graph(4).is_weighted


class TestDegrees:
    def test_out_degree(self, triangle):
        assert triangle.out_degree.tolist() == [1, 1, 1]

    def test_in_degree(self, triangle):
        assert triangle.in_degree.tolist() == [1, 1, 1]

    def test_out_weight(self, triangle):
        assert triangle.out_weight.tolist() == [1.0, 2.0, 3.0]

    def test_star_degrees(self):
        star = star_graph(4)
        assert star.out_degree[0] == 4
        assert star.in_degree[0] == 4
        assert star.out_degree[1] == 1

    def test_dangling_nodes(self):
        graph = DiGraph(np.array([[0.0, 1.0], [0.0, 0.0]]))
        assert graph.dangling_nodes().tolist() == [1]

    def test_no_dangling_in_ring(self):
        assert ring_graph(5).dangling_nodes().size == 0


class TestNeighbors:
    def test_out_neighbors(self, triangle):
        assert triangle.out_neighbors(0).tolist() == [1]
        assert triangle.out_neighbors(2).tolist() == [0]

    def test_in_neighbors(self, triangle):
        assert triangle.in_neighbors(0).tolist() == [2]

    def test_out_edges_weights(self, triangle):
        assert list(triangle.out_edges(1)) == [(2, 2.0)]

    def test_has_edge(self, triangle):
        assert triangle.has_edge(0, 1)
        assert not triangle.has_edge(1, 0)

    def test_edge_weight_absent_edge(self, triangle):
        assert triangle.edge_weight(0, 2) == 0.0

    def test_edges_iteration(self, triangle):
        edges = set(triangle.edges())
        assert (0, 1, 1.0) in edges
        assert (1, 2, 2.0) in edges
        assert (2, 0, 3.0) in edges

    def test_unknown_node_raises(self, triangle):
        with pytest.raises(NodeNotFoundError):
            triangle.out_neighbors(99)
        with pytest.raises(NodeNotFoundError):
            triangle.in_neighbors(-1)


class TestNames:
    def test_name_of(self, triangle):
        assert triangle.name_of(0) == "a"

    def test_node_id(self, triangle):
        assert triangle.node_id("c") == 2

    def test_node_id_missing(self, triangle):
        with pytest.raises(NodeNotFoundError):
            triangle.node_id("zzz")

    def test_name_fallback_without_labels(self):
        graph = ring_graph(3)
        assert graph.name_of(1) == "1"


class TestTransformations:
    def test_reverse_flips_edges(self, triangle):
        reverse = triangle.reverse()
        assert reverse.has_edge(1, 0)
        assert not reverse.has_edge(0, 1)
        assert reverse.n_edges == triangle.n_edges

    def test_reverse_twice_is_identity(self, triangle):
        assert triangle.reverse().reverse() == triangle

    def test_subgraph(self, triangle):
        sub = triangle.subgraph([0, 1])
        assert sub.n_nodes == 2
        assert sub.has_edge(0, 1)
        assert sub.n_edges == 1

    def test_subgraph_keeps_names(self, triangle):
        sub = triangle.subgraph([1, 2])
        assert sub.node_names == ("b", "c")

    def test_subgraph_rejects_out_of_range(self, triangle):
        with pytest.raises(GraphError):
            triangle.subgraph([0, 10])

    def test_self_loop_on_dangling(self):
        graph = DiGraph(np.array([[0.0, 1.0], [0.0, 0.0]]))
        fixed = graph.with_self_loops_on_dangling()
        assert fixed.dangling_nodes().size == 0
        assert fixed.has_edge(1, 1)

    def test_self_loop_noop_when_no_dangling(self):
        ring = ring_graph(4)
        assert ring.with_self_loops_on_dangling() is ring

    def test_equality(self):
        assert ring_graph(4) == ring_graph(4)
        assert ring_graph(4) != ring_graph(5)

    def test_drop_isolated_nodes(self):
        matrix = np.zeros((3, 3))
        matrix[0, 1] = 1.0
        graph = DiGraph(matrix)
        trimmed = graph.largest_out_component_heuristic()
        assert trimmed.n_nodes == 2


class TestPickling:
    def test_round_trip_preserves_structure(self, triangle):
        import pickle

        clone = pickle.loads(pickle.dumps(triangle))
        assert clone == triangle
        assert clone.node_names == triangle.node_names
        assert clone.is_weighted == triangle.is_weighted

    def test_payload_drops_derived_caches(self, triangle):
        # Warm every lazy cache, then check none of it ships in the pickle.
        triangle.in_degree
        triangle.out_weight
        triangle.node_id("b")
        triangle.is_weighted
        state = triangle.__getstate__()
        assert set(state) == {"adjacency", "node_names"}

    def test_caches_rebuild_after_unpickling(self, triangle):
        import pickle

        triangle.node_id("c")  # warm the name map on the original
        clone = pickle.loads(pickle.dumps(triangle))
        np.testing.assert_array_equal(clone.in_degree, triangle.in_degree)
        np.testing.assert_array_equal(clone.out_degree, triangle.out_degree)
        assert clone.node_id("c") == triangle.node_id("c")
        assert clone.in_neighbors(0).tolist() == triangle.in_neighbors(0).tolist()

    def test_unnamed_graph_round_trip(self):
        import pickle

        graph = ring_graph(6)
        clone = pickle.loads(pickle.dumps(graph))
        assert clone == graph
        assert clone.node_names is None


class TestWithEdges:
    def test_add_new_edge(self, triangle):
        updated = triangle.with_edges(added=[(0, 2, 4.0)])
        assert updated.has_edge(0, 2)
        assert updated.edge_weight(0, 2) == pytest.approx(4.0)
        assert updated.n_edges == triangle.n_edges + 1
        # the original is untouched (immutability preserved)
        assert not triangle.has_edge(0, 2)

    def test_default_weight_is_one(self, triangle):
        updated = triangle.with_edges(added=[(0, 2)])
        assert updated.edge_weight(0, 2) == pytest.approx(1.0)

    def test_overwrite_existing_edge(self, triangle):
        updated = triangle.with_edges(added=[(0, 1, 7.5)])
        assert updated.n_edges == triangle.n_edges
        assert updated.edge_weight(0, 1) == pytest.approx(7.5)

    def test_last_added_occurrence_wins(self, triangle):
        updated = triangle.with_edges(added=[(0, 2, 1.0), (0, 2, 9.0)])
        assert updated.edge_weight(0, 2) == pytest.approx(9.0)

    def test_remove_edge(self, triangle):
        updated = triangle.with_edges(removed=[(0, 1)])
        assert not updated.has_edge(0, 1)
        assert updated.n_edges == triangle.n_edges - 1
        assert updated.n_nodes == triangle.n_nodes

    def test_remove_missing_edge_rejected(self, triangle):
        with pytest.raises(GraphError, match="missing edge"):
            triangle.with_edges(removed=[(0, 2)])

    def test_added_and_removed_conflict_rejected(self, triangle):
        with pytest.raises(GraphError, match="both added and removed"):
            triangle.with_edges(added=[(0, 1, 2.0)], removed=[(0, 1)])

    def test_zero_weight_rejected(self, triangle):
        with pytest.raises(GraphError, match="positive"):
            triangle.with_edges(added=[(0, 2, 0.0)])

    def test_out_of_range_nodes_rejected(self, triangle):
        with pytest.raises(NodeNotFoundError):
            triangle.with_edges(added=[(0, 99)])
        with pytest.raises(NodeNotFoundError):
            triangle.with_edges(removed=[(99, 0)])

    def test_bad_tuple_arity_rejected(self, triangle):
        with pytest.raises(GraphError):
            triangle.with_edges(added=[(0, 1, 2.0, 3.0)])

    def test_no_changes_returns_self(self, triangle):
        assert triangle.with_edges() is triangle

    def test_names_preserved(self, triangle):
        updated = triangle.with_edges(added=[(0, 2)])
        assert updated.node_names == triangle.node_names

    def test_matches_direct_construction(self, triangle):
        updated = triangle.with_edges(added=[(0, 2, 4.0)], removed=[(1, 2)])
        expected = np.array(
            [
                [0.0, 1.0, 4.0],
                [0.0, 0.0, 0.0],
                [3.0, 0.0, 0.0],
            ]
        )
        assert updated == DiGraph(expected)


class TestEmptyGraphEdgeCases:
    def test_subgraph_of_no_nodes(self, triangle):
        empty = triangle.subgraph([])
        assert empty.n_nodes == 0
        assert empty.n_edges == 0
        assert len(empty) == 0

    def test_subgraph_of_no_nodes_keeps_empty_names(self, triangle):
        assert triangle.subgraph([]).node_names == ()

    def test_subgraph_of_unnamed_graph_has_no_names(self):
        graph = ring_graph(4)
        assert graph.subgraph([]).node_names is None

    def test_empty_graph_properties(self, triangle):
        empty = triangle.subgraph([])
        assert empty.dangling_nodes().size == 0
        assert not empty.is_weighted
        assert empty.out_degree.size == 0
        assert empty.in_degree.size == 0
        assert list(empty.edges()) == []
        assert 0 not in empty

    def test_empty_graph_transformations(self, triangle):
        empty = triangle.subgraph([])
        assert empty.reverse().n_nodes == 0
        assert empty.with_self_loops_on_dangling().n_nodes == 0
        assert empty.largest_out_component_heuristic().n_nodes == 0
        assert empty.subgraph([]) == empty

    def test_empty_graph_rejects_node_access(self, triangle):
        empty = triangle.subgraph([])
        with pytest.raises(NodeNotFoundError):
            empty.out_neighbors(0)
        with pytest.raises(GraphError):
            empty.subgraph([0])

    def test_empty_graph_pickle_round_trip(self, triangle):
        import pickle

        empty = triangle.subgraph([])
        clone = pickle.loads(pickle.dumps(empty))
        assert clone == empty
        assert clone.n_nodes == 0

    def test_direct_empty_construction(self):
        empty = DiGraph(sp.csr_matrix((0, 0)))
        assert empty.n_nodes == 0
        assert repr(empty) == "DiGraph(n_nodes=0, n_edges=0)"


class TestNonFiniteWeights:
    def test_constructor_rejects_nan_and_inf(self):
        with pytest.raises(GraphError, match="finite"):
            DiGraph(np.array([[0.0, float("nan")], [0.0, 0.0]]))
        with pytest.raises(GraphError, match="finite"):
            DiGraph(np.array([[0.0, float("inf")], [0.0, 0.0]]))

    def test_with_edges_rejects_nan_weight(self, triangle):
        with pytest.raises(GraphError, match="finite"):
            triangle.with_edges(added=[(0, 2, float("nan"))])
        with pytest.raises(GraphError, match="finite"):
            triangle.with_edges(added=[(0, 2, float("inf"))])
