"""Tests for the synthetic graph generators."""

import numpy as np
import pytest

from repro.exceptions import InvalidParameterError
from repro.graph import (
    complete_graph,
    coauthorship_graph,
    copying_web_graph,
    erdos_renyi_graph,
    ring_graph,
    scale_free_graph,
    spam_host_graph,
    star_graph,
    trust_graph,
)
from repro.graph.generators import copurchase_graph, paper_toy_graph
from repro.graph.stats import summarize


class TestDeterministicTopologies:
    def test_ring_structure(self):
        ring = ring_graph(5)
        assert ring.n_nodes == 5
        assert ring.n_edges == 5
        assert ring.has_edge(4, 0)
        assert all(d == 1 for d in ring.out_degree)

    def test_star_structure(self):
        star = star_graph(4)
        assert star.n_nodes == 5
        assert star.n_edges == 8

    def test_complete_graph(self):
        graph = complete_graph(4)
        assert graph.n_edges == 12
        assert not graph.has_edge(0, 0)

    def test_toy_graph_has_six_nodes(self):
        toy = paper_toy_graph()
        assert toy.n_nodes == 6
        # Nodes 0 and 1 (paper's 1 and 2) should carry the highest degrees,
        # matching the statement that they become the hubs.
        total_degree = toy.in_degree + toy.out_degree
        top_two = set(np.argsort(-total_degree)[:2].tolist())
        assert top_two == {0, 1}

    def test_invalid_sizes_rejected(self):
        with pytest.raises(InvalidParameterError):
            ring_graph(0)
        with pytest.raises(InvalidParameterError):
            star_graph(-1)


class TestRandomGenerators:
    def test_erdos_renyi_reproducible(self):
        first = erdos_renyi_graph(40, 0.1, seed=7)
        second = erdos_renyi_graph(40, 0.1, seed=7)
        assert first == second

    def test_erdos_renyi_density(self):
        graph = erdos_renyi_graph(100, 0.05, seed=1)
        density = graph.n_edges / (100 * 99)
        assert 0.02 < density < 0.09

    def test_erdos_renyi_no_self_loops_by_default(self):
        graph = erdos_renyi_graph(30, 0.3, seed=2)
        assert all(not graph.has_edge(v, v) for v in range(30))

    def test_scale_free_has_skewed_in_degree(self):
        graph = scale_free_graph(200, seed=3)
        in_degree = graph.in_degree
        assert in_degree.max() > 4 * max(1.0, np.median(in_degree))

    def test_scale_free_rejects_tiny_graph(self):
        with pytest.raises(InvalidParameterError):
            scale_free_graph(1)

    def test_scale_free_rejects_bad_exponent(self):
        with pytest.raises(InvalidParameterError):
            scale_free_graph(50, exponent=0.9)

    def test_copying_web_reproducible(self):
        assert copying_web_graph(60, seed=5) == copying_web_graph(60, seed=5)

    def test_copying_web_different_seeds_differ(self):
        assert copying_web_graph(60, seed=5) != copying_web_graph(60, seed=6)

    def test_copying_web_no_dangling(self):
        graph = copying_web_graph(80, seed=4)
        assert graph.dangling_nodes().size == 0

    def test_copying_web_density_tracks_out_degree(self):
        graph = copying_web_graph(200, out_degree=6, seed=9)
        assert 3.0 <= graph.n_edges / graph.n_nodes <= 8.0

    def test_trust_graph_reciprocity(self):
        graph = trust_graph(150, reciprocity=0.5, seed=11)
        stats = summarize(graph)
        low = summarize(trust_graph(150, reciprocity=0.0, seed=11)).reciprocity
        assert stats.reciprocity > low

    def test_trust_graph_size(self):
        graph = trust_graph(100, seed=1)
        assert graph.n_nodes == 100
        assert graph.n_edges > 100


class TestLabelledGenerators:
    def test_spam_graph_labels_shape(self):
        graph, labels = spam_host_graph(60, 20, seed=1)
        assert graph.n_nodes == 80
        assert labels.shape == (80,)
        assert labels.sum() == 20
        assert set(np.unique(labels)) <= {0, 1}

    def test_spam_nodes_link_mostly_to_spam(self):
        graph, labels = spam_host_graph(100, 40, seed=2)
        spam_ids = np.flatnonzero(labels == 1)
        into_spam = 0
        total = 0
        for spam in spam_ids:
            for target in graph.out_neighbors(int(spam)):
                total += 1
                into_spam += labels[target] == 1
        assert total > 0
        assert into_spam / total > 0.7

    def test_coauthorship_weighted_and_symmetric(self):
        graph, counts = coauthorship_graph(50, seed=3)
        assert graph.is_weighted
        assert counts.shape == (50,)
        for source, target, weight in list(graph.edges())[:50]:
            assert graph.edge_weight(target, source) == pytest.approx(weight)

    def test_coauthorship_prolific_authors_have_high_degree(self):
        graph, counts = coauthorship_graph(80, n_prolific=2, prolific_boost=20.0, seed=4)
        degrees = graph.out_degree
        prolific = np.argsort(-counts)[:2]
        assert degrees[prolific].mean() > degrees.mean()

    def test_copurchase_graph_categories(self):
        graph, categories = copurchase_graph(70, n_categories=5, seed=5)
        assert graph.n_nodes == 70
        assert categories.shape == (70,)
        assert categories.max() < 5

    def test_generators_reject_invalid_probability(self):
        with pytest.raises(InvalidParameterError):
            erdos_renyi_graph(10, 1.5)
        with pytest.raises(InvalidParameterError):
            copying_web_graph(10, copy_probability=-0.1)
