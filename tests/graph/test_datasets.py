"""Tests for the paper-dataset stand-ins."""

import pytest

from repro.graph import datasets


class TestRegistry:
    def test_all_paper_datasets_registered(self):
        names = set(datasets.available_datasets())
        assert {"web-stanford-cs", "epinions", "web-stanford", "web-google", "webspam", "dblp"} <= names

    def test_specs_have_paper_sizes(self):
        spec = datasets.PAPER_DATASETS["web-google"]
        assert spec.paper_nodes == 875_713
        assert spec.paper_edges == 5_105_039

    def test_unknown_dataset_raises(self):
        with pytest.raises(KeyError):
            datasets.load_dataset("not-a-dataset")


class TestLoaders:
    @pytest.mark.parametrize(
        "name", ["web-stanford-cs", "epinions", "web-stanford", "web-google"]
    )
    def test_load_dataset_scaled_down(self, name):
        graph = datasets.load_dataset(name, scale=0.05)
        assert graph.n_nodes >= 50
        assert graph.n_edges > graph.n_nodes  # all stand-ins are denser than a tree

    def test_load_dataset_deterministic(self):
        first = datasets.load_dataset("web-stanford-cs", scale=0.05)
        second = datasets.load_dataset("web-stanford-cs", scale=0.05)
        assert first == second

    def test_webspam_labels(self):
        graph, labels = datasets.webspam(scale=0.1)
        assert labels.shape[0] == graph.n_nodes
        spam_fraction = labels.mean()
        assert 0.1 < spam_fraction < 0.3  # paper's graph is ~18.5% spam

    def test_dblp_weighted(self):
        graph, counts = datasets.dblp(scale=0.1)
        assert graph.is_weighted
        assert counts.shape[0] == graph.n_nodes

    def test_copurchase_loader(self):
        graph, categories = datasets.amazon_copurchase(scale=0.1)
        assert categories.shape[0] == graph.n_nodes

    def test_scale_parameter_grows_graph(self):
        small = datasets.web_stanford_cs(scale=0.05)
        large = datasets.web_stanford_cs(scale=0.1)
        assert large.n_nodes > small.n_nodes

    def test_load_dataset_accepts_seed(self):
        first = datasets.load_dataset("epinions", scale=0.03, seed=1)
        second = datasets.load_dataset("epinions", scale=0.03, seed=2)
        assert first != second
