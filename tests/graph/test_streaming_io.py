"""Streaming edge-list loader: bit-identity with the builder path.

``stream_edge_list`` parses files in chunks straight into CSR arrays; the
contract is that for any edge list — whatever the formatting noise (comments,
blank lines, tab/space/extra-whitespace variants) and whatever the chunk
size — the resulting graph is **bit-identical** to ``from_edges`` over the
same edges: same shape, same duplicate-summing, same CSR data/indices/indptr.
"""

import gzip
from pathlib import Path

from hypothesis import given, settings
from hypothesis import strategies as st
import numpy as np
import pytest

from repro.exceptions import GraphError, SerializationError
from repro.graph.builder import from_edges
from repro.graph.io import read_edge_list, stream_edge_list

FIXTURE = Path(__file__).parent / "data" / "web_tiny.txt"


def assert_same_graph(actual, expected):
    a, b = actual.adjacency, expected.adjacency
    assert a.shape == b.shape
    np.testing.assert_array_equal(a.indptr, b.indptr)
    np.testing.assert_array_equal(a.indices, b.indices)
    np.testing.assert_array_equal(a.data, b.data)


@st.composite
def edge_list_files(draw):
    """Random edges plus the text rendering with formatting noise."""
    n_edges = draw(st.integers(min_value=1, max_value=60))
    weighted = draw(st.booleans())
    edges = []
    for _ in range(n_edges):
        source = draw(st.integers(min_value=0, max_value=40))
        target = draw(st.integers(min_value=0, max_value=40))
        if weighted:
            weight = draw(
                st.floats(min_value=0.0, max_value=8.0, allow_nan=False, width=32)
            )
            edges.append((source, target, float(np.float32(weight))))
        else:
            edges.append((source, target))
    lines = []
    for edge in edges:
        if draw(st.booleans()) and draw(st.booleans()):
            lines.append(draw(st.sampled_from(["", "# comment", "   ", "\t"])))
        sep = draw(st.sampled_from([" ", "\t", "  ", " \t "]))
        prefix = draw(st.sampled_from(["", " ", "\t"]))
        suffix = draw(st.sampled_from(["", " ", "  "]))
        if weighted:
            source, target, weight = edge
            lines.append(f"{prefix}{source}{sep}{target}{sep}{weight!r}{suffix}")
        else:
            source, target = edge
            lines.append(f"{prefix}{source}{sep}{target}{suffix}")
    chunk_edges = draw(st.integers(min_value=1, max_value=64))
    return edges, "\n".join(lines) + "\n", weighted, chunk_edges


class TestStreamEqualsBuilder:
    @given(edge_list_files())
    @settings(max_examples=80, deadline=None)
    def test_bit_identical_to_from_edges(self, tmp_path_factory, case):
        edges, text, weighted, chunk_edges = case
        path = tmp_path_factory.mktemp("stream") / "edges.txt"
        path.write_text(text, encoding="utf-8")
        streamed = stream_edge_list(path, weighted=weighted, chunk_edges=chunk_edges)
        assert_same_graph(streamed, from_edges(edges))

    @given(edge_list_files())
    @settings(max_examples=25, deadline=None)
    def test_gzip_round_trip(self, tmp_path_factory, case):
        edges, text, weighted, chunk_edges = case
        path = tmp_path_factory.mktemp("stream") / "edges.txt.gz"
        with gzip.open(path, "wt", encoding="utf-8") as handle:
            handle.write(text)
        streamed = stream_edge_list(path, weighted=weighted, chunk_edges=chunk_edges)
        assert_same_graph(streamed, from_edges(edges))

    @given(edge_list_files(), st.integers(min_value=41, max_value=80))
    @settings(max_examples=25, deadline=None)
    def test_n_nodes_padding_matches(self, tmp_path_factory, case, n_nodes):
        edges, text, weighted, chunk_edges = case
        path = tmp_path_factory.mktemp("stream") / "edges.txt"
        path.write_text(text, encoding="utf-8")
        streamed = stream_edge_list(
            path, weighted=weighted, chunk_edges=chunk_edges, n_nodes=n_nodes
        )
        assert_same_graph(streamed, from_edges(edges, n_nodes=n_nodes))

    @given(edge_list_files())
    @settings(max_examples=25, deadline=None)
    def test_self_loop_filtering_matches(self, tmp_path_factory, case):
        edges, text, weighted, chunk_edges = case
        if all(edge[0] == edge[1] for edge in edges):
            return  # from_edges would (correctly) reject the empty graph
        path = tmp_path_factory.mktemp("stream") / "edges.txt"
        path.write_text(text, encoding="utf-8")
        streamed = stream_edge_list(
            path, weighted=weighted, chunk_edges=chunk_edges, allow_self_loops=False
        )
        assert_same_graph(streamed, from_edges(edges, allow_self_loops=False))


class TestBundledFixture:
    def test_fixture_streams_and_matches_line_reader(self):
        streamed = stream_edge_list(FIXTURE, chunk_edges=37)
        line_by_line = read_edge_list(FIXTURE)
        assert_same_graph(streamed, line_by_line)
        assert streamed.n_nodes == 60
        assert streamed.n_edges == 216

    def test_fixture_chunk_size_invariance(self):
        whole = stream_edge_list(FIXTURE)
        for chunk_edges in (1, 7, 100):
            assert_same_graph(stream_edge_list(FIXTURE, chunk_edges=chunk_edges), whole)


class TestStreamErrors:
    def test_missing_file(self, tmp_path):
        with pytest.raises(SerializationError):
            stream_edge_list(tmp_path / "absent.txt")

    def test_no_edges(self, tmp_path):
        path = tmp_path / "empty.txt"
        path.write_text("# only comments\n\n", encoding="utf-8")
        with pytest.raises(SerializationError, match="contains no edges"):
            stream_edge_list(path)

    def test_too_few_columns(self, tmp_path):
        path = tmp_path / "bad.txt"
        path.write_text("0 1\n2\n", encoding="utf-8")
        with pytest.raises(SerializationError):
            stream_edge_list(path)

    def test_negative_ids(self, tmp_path):
        path = tmp_path / "neg.txt"
        path.write_text("0 1\n-3 2\n", encoding="utf-8")
        with pytest.raises(GraphError, match="non-negative"):
            stream_edge_list(path)

    def test_bad_chunk_size(self, tmp_path):
        path = tmp_path / "edges.txt"
        path.write_text("0 1\n", encoding="utf-8")
        with pytest.raises(SerializationError, match="chunk_edges"):
            stream_edge_list(path, chunk_edges=0)
