"""Tests for graph summary statistics."""

import numpy as np
import pytest

from repro.graph import (
    DiGraph,
    complete_graph,
    copying_web_graph,
    degree_histogram,
    ring_graph,
    summarize,
)
from repro.graph.stats import powerlaw_exponent_estimate


class TestSummarize:
    def test_ring_statistics(self):
        stats = summarize(ring_graph(10))
        assert stats.n_nodes == 10
        assert stats.n_edges == 10
        assert stats.mean_out_degree == pytest.approx(1.0)
        assert stats.n_dangling == 0
        assert stats.reciprocity == 0.0

    def test_complete_graph_reciprocity(self):
        stats = summarize(complete_graph(5))
        assert stats.reciprocity == pytest.approx(1.0)
        assert stats.density == pytest.approx(1.0)

    def test_dangling_count(self):
        graph = DiGraph(np.array([[0.0, 1.0], [0.0, 0.0]]))
        assert summarize(graph).n_dangling == 1

    def test_as_dict_keys(self):
        stats = summarize(ring_graph(4)).as_dict()
        assert {"n_nodes", "n_edges", "density", "reciprocity"} <= set(stats)


class TestDegreeHistogram:
    def test_ring_histogram(self):
        values, counts = degree_histogram(ring_graph(6), direction="out")
        assert values.tolist() == [1]
        assert counts.tolist() == [6]

    def test_in_direction(self):
        values, counts = degree_histogram(ring_graph(6), direction="in")
        assert counts.sum() == 6

    def test_invalid_direction(self):
        with pytest.raises(ValueError):
            degree_histogram(ring_graph(3), direction="sideways")

    def test_web_graph_has_degree_spread(self):
        values, counts = degree_histogram(copying_web_graph(150, seed=2), direction="in")
        assert values.size > 3  # heavy-tailed: many distinct in-degrees


class TestPowerLawEstimate:
    def test_returns_finite_value_on_web_graph(self):
        estimate = powerlaw_exponent_estimate(copying_web_graph(200, seed=1))
        assert np.isfinite(estimate)
        assert estimate > 1.0

    def test_nan_on_tiny_graph(self):
        graph = DiGraph(np.array([[0.0, 1.0], [0.0, 0.0]]))
        estimate = powerlaw_exponent_estimate(graph, direction="out")
        assert np.isnan(estimate) or estimate > 0
