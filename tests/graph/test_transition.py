"""Tests for transition-matrix construction and dangling-node policies."""

import numpy as np
import pytest

from repro.exceptions import GraphError
from repro.graph import (
    DiGraph,
    DanglingPolicy,
    is_column_stochastic,
    ring_graph,
    star_graph,
    transition_matrix,
    weighted_transition_matrix,
)
from repro.graph.generators import coauthorship_graph, copying_web_graph


class TestTransitionMatrix:
    def test_column_stochastic_on_ring(self):
        assert is_column_stochastic(transition_matrix(ring_graph(5)))

    def test_column_stochastic_on_web(self):
        graph = copying_web_graph(80, seed=1)
        assert is_column_stochastic(transition_matrix(graph))

    def test_entries_match_out_degree(self):
        star = star_graph(3)  # centre 0 <-> leaves 1..3
        matrix = transition_matrix(star).toarray()
        # Column 0 spreads 1/3 to each leaf.
        assert matrix[1, 0] == pytest.approx(1 / 3)
        assert matrix[2, 0] == pytest.approx(1 / 3)
        # Each leaf sends everything back to the centre.
        assert matrix[0, 1] == pytest.approx(1.0)

    def test_direction_convention(self):
        # Edge 0 -> 1 means column 0 has mass at row 1 (A[i,j] for edge j->i).
        graph = DiGraph(np.array([[0.0, 1.0], [0.0, 0.0]]))
        matrix = transition_matrix(graph).toarray()
        assert matrix[1, 0] == pytest.approx(1.0)

    def test_weights_ignored_by_unweighted_transition(self):
        graph = DiGraph(np.array([[0.0, 5.0, 1.0], [1.0, 0.0, 0.0], [1.0, 0.0, 0.0]]))
        matrix = transition_matrix(graph).toarray()
        assert matrix[1, 0] == pytest.approx(0.5)
        assert matrix[2, 0] == pytest.approx(0.5)

    def test_dangling_self_loop_policy(self):
        graph = DiGraph(np.array([[0.0, 1.0], [0.0, 0.0]]))
        matrix = transition_matrix(graph, dangling=DanglingPolicy.SELF_LOOP)
        assert is_column_stochastic(matrix)
        assert matrix.toarray()[1, 1] == pytest.approx(1.0)

    def test_dangling_sink_policy_adds_node(self):
        graph = DiGraph(np.array([[0.0, 1.0], [0.0, 0.0]]))
        matrix = transition_matrix(graph, dangling=DanglingPolicy.SINK)
        assert matrix.shape == (3, 3)
        assert is_column_stochastic(matrix)
        dense = matrix.toarray()
        assert dense[2, 1] == pytest.approx(1.0)  # dangling node feeds the sink
        assert dense[2, 2] == pytest.approx(1.0)  # sink loops onto itself

    def test_dangling_error_policy(self):
        graph = DiGraph(np.array([[0.0, 1.0], [0.0, 0.0]]))
        with pytest.raises(GraphError):
            transition_matrix(graph, dangling=DanglingPolicy.ERROR)

    def test_policy_accepts_string(self):
        graph = DiGraph(np.array([[0.0, 1.0], [0.0, 0.0]]))
        matrix = transition_matrix(graph, dangling="sink")
        assert matrix.shape == (3, 3)


class TestWeightedTransitionMatrix:
    def test_column_stochastic(self):
        graph, _ = coauthorship_graph(40, seed=2)
        assert is_column_stochastic(weighted_transition_matrix(graph))

    def test_probability_proportional_to_weight(self):
        # Node 0 has out-edges to 1 (weight 3) and 2 (weight 1); rows are sources.
        graph = DiGraph(np.array([[0.0, 3.0, 1.0], [1.0, 0.0, 0.0], [1.0, 0.0, 0.0]]))
        matrix = weighted_transition_matrix(graph).toarray()
        assert matrix[1, 0] == pytest.approx(0.75)
        assert matrix[2, 0] == pytest.approx(0.25)

    def test_weighted_dangling_self_loop(self):
        graph = DiGraph(np.array([[0.0, 2.0], [0.0, 0.0]]))
        matrix = weighted_transition_matrix(graph)
        assert is_column_stochastic(matrix)

    def test_weighted_dangling_error(self):
        graph = DiGraph(np.array([[0.0, 2.0], [0.0, 0.0]]))
        with pytest.raises(GraphError):
            weighted_transition_matrix(graph, dangling=DanglingPolicy.ERROR)

    def test_weighted_dangling_sink(self):
        graph = DiGraph(np.array([[0.0, 2.0], [0.0, 0.0]]))
        matrix = weighted_transition_matrix(graph, dangling=DanglingPolicy.SINK)
        assert matrix.shape == (3, 3)
        assert is_column_stochastic(matrix)

    def test_differs_from_unweighted_when_weights_vary(self):
        # Node 0 spreads unevenly (3 vs 1) so the weighted matrix must differ.
        graph = DiGraph(np.array([[0.0, 3.0, 1.0], [1.0, 0.0, 0.0], [1.0, 0.0, 0.0]]))
        unweighted = transition_matrix(graph).toarray()
        weighted = weighted_transition_matrix(graph).toarray()
        assert not np.allclose(unweighted, weighted)


class TestIsColumnStochastic:
    def test_rejects_non_square(self):
        import scipy.sparse as sp

        assert not is_column_stochastic(sp.csc_matrix(np.ones((2, 3))))

    def test_rejects_bad_column_sum(self):
        import scipy.sparse as sp

        matrix = sp.csc_matrix(np.array([[0.5, 0.0], [0.4, 1.0]]))
        assert not is_column_stochastic(matrix)

    def test_accepts_identity(self):
        import scipy.sparse as sp

        assert is_column_stochastic(sp.identity(4, format="csc"))


class TestRebuildTransitionColumns:
    """The delta path must splice columns bit-identically to a full rebuild."""

    def _assert_bit_identical(self, spliced, full):
        assert spliced.shape == full.shape
        np.testing.assert_array_equal(spliced.indptr, full.indptr)
        np.testing.assert_array_equal(spliced.indices, full.indices)
        np.testing.assert_array_equal(spliced.data, full.data)

    def test_insertion_splice_equals_full_rebuild(self):
        from repro.graph import rebuild_transition_columns, ring_graph

        graph = ring_graph(6)
        old = transition_matrix(graph)
        new_graph = graph.with_edges(added=[(0, 3), (2, 5)])
        spliced, changed = rebuild_transition_columns(old, new_graph, [0, 2])
        self._assert_bit_identical(spliced, transition_matrix(new_graph))
        assert sorted(changed.tolist()) == [0, 2]
        assert is_column_stochastic(spliced)

    def test_deletion_creating_dangling_node_gets_self_loop(self):
        from repro.graph import from_edges, rebuild_transition_columns

        graph = from_edges([(0, 1), (1, 2), (2, 0)])
        old = transition_matrix(graph)
        new_graph = graph.with_edges(removed=[(1, 2)])  # node 1 now dangling
        spliced, changed = rebuild_transition_columns(old, new_graph, [1])
        self._assert_bit_identical(spliced, transition_matrix(new_graph))
        assert changed.tolist() == [1]
        assert spliced[1, 1] == 1.0

    def test_superset_of_sources_filters_unchanged_columns(self):
        from repro.graph import rebuild_transition_columns, ring_graph

        graph = ring_graph(5)
        old = transition_matrix(graph)
        new_graph = graph.with_edges(added=[(0, 2)])
        spliced, changed = rebuild_transition_columns(
            old, new_graph, range(graph.n_nodes)
        )
        self._assert_bit_identical(spliced, transition_matrix(new_graph))
        assert changed.tolist() == [0]

    def test_weight_change_is_a_noop_for_the_unweighted_walk(self):
        from repro.graph import rebuild_transition_columns, ring_graph

        graph = ring_graph(5)
        old = transition_matrix(graph)
        new_graph = graph.with_edges(added=[(0, 1, 3.0)])  # 0->1 exists; reweight
        spliced, changed = rebuild_transition_columns(old, new_graph, [0])
        assert changed.size == 0
        self._assert_bit_identical(spliced, old)

    def test_weighted_splice_equals_full_weighted_rebuild(self):
        from repro.graph import rebuild_transition_columns

        graph = DiGraph(
            np.array(
                [
                    [0.0, 3.0, 1.0],
                    [1.0, 0.0, 2.0],
                    [1.0, 0.5, 0.0],
                ]
            )
        )
        old = weighted_transition_matrix(graph)
        new_graph = graph.with_edges(added=[(0, 1, 5.0)], removed=[(2, 0)])
        spliced, changed = rebuild_transition_columns(
            old, new_graph, [0, 2], weighted=True
        )
        self._assert_bit_identical(spliced, weighted_transition_matrix(new_graph))
        assert sorted(changed.tolist()) == [0, 2]

    def test_sink_policy_rejected(self):
        from repro.graph import DanglingPolicy, rebuild_transition_columns, ring_graph

        graph = ring_graph(4)
        with pytest.raises(GraphError):
            rebuild_transition_columns(
                transition_matrix(graph), graph, [0], dangling=DanglingPolicy.SINK
            )

    def test_shape_mismatch_rejected(self):
        from repro.graph import rebuild_transition_columns, ring_graph

        with pytest.raises(GraphError):
            rebuild_transition_columns(
                transition_matrix(ring_graph(4)), ring_graph(5), [0]
            )

    def test_out_of_range_sources_rejected(self):
        from repro.graph import rebuild_transition_columns, ring_graph

        graph = ring_graph(4)
        with pytest.raises(GraphError):
            rebuild_transition_columns(transition_matrix(graph), graph, [7])

    def test_random_mutations_match_full_rebuild(self):
        from repro.graph import erdos_renyi_graph, rebuild_transition_columns

        rng = np.random.default_rng(5)
        graph = erdos_renyi_graph(30, 0.12, seed=2)
        for _ in range(10):
            edges = [(u, v) for u, v, _ in graph.edges()]
            removed = []
            if edges:
                removed.append(edges[int(rng.integers(0, len(edges)))])
            added = []
            for _ in range(3):
                u, v = int(rng.integers(0, 30)), int(rng.integers(0, 30))
                if u != v and not graph.has_edge(u, v) and (u, v) not in added:
                    added.append((u, v))
            new_graph = graph.with_edges(added=added, removed=removed)
            touched = {u for u, _ in added} | {u for u, _ in removed}
            spliced, _ = rebuild_transition_columns(
                transition_matrix(graph), new_graph, touched
            )
            self._assert_bit_identical(spliced, transition_matrix(new_graph))
            graph = new_graph
