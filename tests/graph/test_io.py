"""Tests for edge-list and label I/O."""

import pytest

from repro.exceptions import SerializationError
from repro.graph import (
    read_edge_list,
    read_node_labels,
    ring_graph,
    write_edge_list,
    write_node_labels,
)
from repro.graph.generators import coauthorship_graph, copying_web_graph
from repro.graph.io import labels_to_array


class TestEdgeListRoundTrip:
    def test_unweighted_round_trip(self, tmp_path):
        graph = copying_web_graph(40, seed=1)
        path = tmp_path / "graph.txt"
        write_edge_list(graph, path)
        loaded = read_edge_list(path)
        assert loaded == graph

    def test_weighted_round_trip(self, tmp_path):
        graph, _ = coauthorship_graph(30, seed=2)
        path = tmp_path / "weighted.txt"
        write_edge_list(graph, path)
        loaded = read_edge_list(path, weighted=True)
        assert loaded.n_nodes == graph.n_nodes
        assert loaded.n_edges == graph.n_edges
        assert loaded == graph

    def test_comments_and_blank_lines_skipped(self, tmp_path):
        path = tmp_path / "edges.txt"
        path.write_text("# comment\n\n0 1\n1 2\n")
        graph = read_edge_list(path)
        assert graph.n_edges == 2

    def test_missing_file_raises(self, tmp_path):
        with pytest.raises(SerializationError):
            read_edge_list(tmp_path / "missing.txt")

    def test_malformed_line_raises(self, tmp_path):
        path = tmp_path / "bad.txt"
        path.write_text("0\n")
        with pytest.raises(SerializationError):
            read_edge_list(path)

    def test_empty_file_raises(self, tmp_path):
        path = tmp_path / "empty.txt"
        path.write_text("# nothing here\n")
        with pytest.raises(SerializationError):
            read_edge_list(path)

    def test_weight_column_ignored_when_unweighted(self, tmp_path):
        path = tmp_path / "w.txt"
        path.write_text("0 1 9.5\n")
        graph = read_edge_list(path, weighted=False)
        assert graph.edge_weight(0, 1) == pytest.approx(1.0)

    def test_header_written(self, tmp_path):
        path = tmp_path / "ring.txt"
        write_edge_list(ring_graph(3), path)
        assert path.read_text().startswith("#")


class TestNodeLabels:
    def test_round_trip_dict(self, tmp_path):
        labels = {0: "spam", 1: "normal", 5: "spam"}
        path = tmp_path / "labels.txt"
        write_node_labels(labels, path)
        assert read_node_labels(path) == labels

    def test_round_trip_pairs(self, tmp_path):
        path = tmp_path / "labels.txt"
        write_node_labels([(2, "a"), (1, "b")], path)
        assert read_node_labels(path) == {1: "b", 2: "a"}

    def test_malformed_label_line(self, tmp_path):
        path = tmp_path / "labels.txt"
        path.write_text("3\n")
        with pytest.raises(SerializationError):
            read_node_labels(path)

    def test_labels_to_array(self):
        labels = {0: "spam", 2: "normal", 4: "spam"}
        array = labels_to_array(labels, 5, positive="spam")
        assert array.tolist() == [1, 0, 0, 0, 1]

    def test_labels_to_array_ignores_out_of_range(self):
        array = labels_to_array({10: "spam"}, 3, positive="spam")
        assert array.tolist() == [0, 0, 0]
