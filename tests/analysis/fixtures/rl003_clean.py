"""Clean RL003 counterpart: copies are promoted before any write, and a
non-mapped ``np.load`` is free to mutate.  Parsed by the checker tests,
never imported.
"""

import numpy as np


def patch_layout(path):
    mapped = np.load(path, mmap_mode="r")
    arr = np.array(mapped, copy=True)  # copy-on-write promotion
    arr[0] = 1.0
    arr += 2.0
    arr.sort()
    return arr


def patch_loaded(path):
    arr = np.load(path)  # no mmap_mode: a private in-memory array
    arr[0] = 1.0
    np.add(arr, 1.0, out=arr)
    return arr


def read_only_scan(path):
    mapped = np.memmap(path, dtype="float32", mode="r")
    total = float(mapped.sum())  # reads never mutate
    head = mapped[:16].copy()  # slicing + copy launders the taint
    head[0] = total
    return head
