"""Seeded RL003 violations: in-place mutation of memory-mapped arrays.

Parsed by the checker tests, never imported.
"""

import numpy as np


def patch_layout(path):
    arr = np.load(path, mmap_mode="r")
    arr[0] = 1.0  # RL003: subscript store into a mapped array
    arr += 2.0  # RL003: augmented assignment
    arr.sort()  # RL003: in-place ndarray method
    np.copyto(arr, 0.0)  # RL003: mutating free function
    np.add(arr, 1.0, out=arr)  # RL003: out= targets the mapping
    return arr


def patch_via_alias(path):
    raw = np.memmap(path, dtype="float32", mode="r")
    view = np.asarray(raw)  # zero-copy: taint flows through
    view[3] = 7.0  # RL003: still the mapped bytes
    return view


class IndexShard:
    """The registry says ``IndexShard._state_arrays`` holds memmaps."""

    def poke(self, count):
        self._state_arrays["residual"][:count] = 0.0  # RL003
