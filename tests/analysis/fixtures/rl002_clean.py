"""Clean RL002 counterpart: both paths acquire data -> stats, and the
cross-method case (a helper acquiring the inner lock) follows the same
global order.  Parsed by the checker tests, never imported.
"""

import threading


class Pipeline:
    def __init__(self):
        self._data_lock = threading.Lock()
        self._stats_lock = threading.Lock()
        self._rows = []
        self._counts = {}

    def report(self):
        with self._data_lock:
            with self._stats_lock:
                return len(self._rows), dict(self._counts)

    def ingest(self, row):
        with self._data_lock:
            self._rows.append(row)
            self._count_locked(row)

    def _count_locked(self, row):
        with self._stats_lock:  # still data -> stats via the caller
            self._counts[row[0]] = self._counts.get(row[0], 0) + 1
