"""Seeded RL001 violations: guarded attributes touched without the lock.

Parsed by the checker tests, never imported.
"""

import threading


class Telemetry:
    """Exercises lock *inference*: ``_count`` is written twice under
    ``_lock``, so the unlocked read in ``peek`` must be flagged."""

    def __init__(self):
        self._lock = threading.Lock()
        self._count = 0

    def bump(self):
        with self._lock:
            self._count += 1

    def bump_many(self, n):
        with self._lock:
            self._count += n

    def peek(self):
        return self._count  # RL001: inferred guard not held


class LatencyStats:
    """Exercises the GUARDED_BY registry: the real class of this name
    declares ``_samples`` guarded by ``_lock``."""

    def __init__(self):
        self._lock = threading.Lock()
        self._samples = []

    def record(self, value):
        with self._lock:
            self._samples.append(value)

    def reset(self):
        self._samples = []  # RL001: registry guard not held
