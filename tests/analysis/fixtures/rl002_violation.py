"""Seeded RL002 violation: two locks acquired in opposite orders.

``report()`` nests ``_stats_lock`` inside ``_data_lock``; ``ingest()``
nests them the other way around — two threads running one each can
deadlock.  Parsed by the checker tests, never imported.
"""

import threading


class Pipeline:
    def __init__(self):
        self._data_lock = threading.Lock()
        self._stats_lock = threading.Lock()
        self._rows = []
        self._counts = {}

    def report(self):
        with self._data_lock:
            with self._stats_lock:  # RL002: data -> stats
                return len(self._rows), dict(self._counts)

    def ingest(self, row):
        with self._stats_lock:
            with self._data_lock:  # RL002: stats -> data (cycle!)
                self._rows.append(row)
                self._counts[row[0]] = self._counts.get(row[0], 0) + 1
