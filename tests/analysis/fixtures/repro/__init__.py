# Package markers so the loader derives the dotted name "repro.net.*" for
# the RL004 fixtures (the rule only applies under that prefix).  These
# fixture packages are parsed by tests, never imported.
