"""Clean RL004 counterpart: blocking work goes through the executor, and
asyncio-native close() calls are exempt.  Parsed by the checker tests,
never imported.
"""

import asyncio


class Handler:
    async def handle(self, request):
        loop = asyncio.get_running_loop()
        # The blocking callable is *passed*, not called, on the loop thread.
        return await loop.run_in_executor(
            self.pool, self.service.serve, [request.key]
        )

    async def teardown(self, writer):
        writer.close()  # asyncio StreamWriter: non-blocking by contract
        await self.coalescer.aclose()

    def sync_helper(self):
        # Not an async def: free to block.
        self.service.serve([0])
