"""Seeded RL004 violations: blocking calls on the event loop thread.

Module path puts this under the ``repro.net`` prefix the rule scopes to.
Parsed by the checker tests, never imported.
"""

import pickle
import time


class Handler:
    async def handle(self, request):
        time.sleep(0.05)  # RL004: blocking call symbol
        payload = pickle.dumps(request)  # RL004: blocking call symbol
        results = self.service.serve([request.key])  # RL004: blocking method
        return payload, results

    async def teardown(self):
        self.pool.shutdown(wait=True)  # RL004: joins worker threads
