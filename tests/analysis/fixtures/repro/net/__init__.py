# See ../__init__.py — fixture package marker only.
