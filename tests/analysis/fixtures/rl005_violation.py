"""Seeded RL005 violations: unpicklable resources with no (or an
incomplete) ``__getstate__``.  Parsed by the checker tests, never imported.
"""

import threading
from concurrent.futures import ThreadPoolExecutor


class Engine:
    """No __getstate__ at all."""

    def __init__(self):
        self._lock = threading.Lock()  # RL005
        self.data = [1, 2, 3]


class Holder:
    """__getstate__ copies __dict__ but never drops the pool."""

    def __init__(self):
        self._pool = ThreadPoolExecutor(max_workers=2)  # RL005
        self.results = {}

    def __getstate__(self):
        state = dict(self.__dict__)
        state["results"] = dict(self.results)
        return state
