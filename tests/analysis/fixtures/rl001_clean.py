"""Clean RL001 counterpart: every guarded access holds its lock, including
one routed through a helper whose only caller holds it.

Parsed by the checker tests, never imported.
"""

import threading


class Telemetry:
    def __init__(self):
        self._lock = threading.Lock()
        self._count = 0

    def bump(self):
        with self._lock:
            self._count += 1

    def bump_many(self, n):
        with self._lock:
            self._count += n

    def peek(self):
        with self._lock:
            return self._count


class LatencyStats:
    def __init__(self):
        self._lock = threading.Lock()
        self._samples = []

    def record(self, value):
        with self._lock:
            self._record_locked(value)

    def _record_locked(self, value):
        # Legal without taking the lock: the one call site above holds it.
        self._samples.append(value)

    def reset(self):
        with self._lock:
            self._samples = []
