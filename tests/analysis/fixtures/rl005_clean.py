"""Clean RL005 counterpart: both sanctioned ``__getstate__`` shapes.

Parsed by the checker tests, never imported.
"""

import threading
from concurrent.futures import ThreadPoolExecutor


class Engine:
    """Explicit-dict getstate: state is rebuilt from scratch, so the lock
    is dropped by construction."""

    def __init__(self):
        self._lock = threading.Lock()
        self.data = [1, 2, 3]

    def __getstate__(self):
        return {"data": list(self.data)}

    def __setstate__(self, state):
        self._lock = threading.Lock()
        self.data = state["data"]


class Holder:
    """Dict-copying getstate that explicitly drops the pool."""

    def __init__(self):
        self._pool = ThreadPoolExecutor(max_workers=2)
        self.results = {}

    def __getstate__(self):
        state = dict(self.__dict__)
        state["_pool"] = None
        return state

    def __setstate__(self, state):
        self.__dict__.update(state)
        self._pool = ThreadPoolExecutor(max_workers=2)
