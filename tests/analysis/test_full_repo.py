"""The tier-1 gate: reprolint over the real codebase must be clean.

"Clean" means zero unbaselined findings and zero expired baseline entries —
new violations fail this test immediately, and fixed code must have its
baseline entry removed in the same change.  Every baseline entry and every
inline suppression must carry a real, human-written justification.
"""

from pathlib import Path

import pytest

from repro.analysis import Baseline, run_analysis

REPO_ROOT = Path(__file__).resolve().parents[2]
SRC = REPO_ROOT / "src" / "repro"
BASELINE = REPO_ROOT / "analysis" / "baseline.json"


@pytest.fixture(scope="module")
def repo_result():
    baseline = Baseline.load(BASELINE)
    return run_analysis([SRC], baseline=baseline, root=REPO_ROOT), baseline


def test_no_unbaselined_findings(repo_result):
    result, _ = repo_result
    rendered = "\n".join(f.render() for f in result.unbaselined)
    assert not result.unbaselined, (
        "reprolint found new (unbaselined) violations:\n"
        f"{rendered}\n"
        "Fix them, suppress with a written reason, or (only with "
        "justification) add them to analysis/baseline.json."
    )


def test_no_expired_baseline_entries(repo_result):
    result, _ = repo_result
    assert not result.expired_baseline, (
        "baseline entries match no current finding (the code was fixed): "
        f"{result.expired_baseline} — delete them from analysis/baseline.json"
    )


def test_every_baseline_entry_is_justified(repo_result):
    _, baseline = repo_result
    assert baseline.entries, "the committed baseline should not be empty-loaded"
    for entry in baseline.entries:
        assert "FIXME" not in entry.reason, (
            f"baseline entry {entry.fingerprint} ({entry.symbol}) still has "
            "a placeholder reason — write the real justification"
        )
        assert len(entry.reason.split()) >= 5, (
            f"baseline entry {entry.fingerprint} ({entry.symbol}) has a "
            f"throwaway reason {entry.reason!r} — justify it properly"
        )


def test_every_suppression_is_justified(repo_result):
    result, _ = repo_result
    assert result.suppressed, "the known inline suppressions should be seen"
    for finding, suppression in result.suppressed:
        assert len(suppression.reason.split()) >= 3, (
            f"{finding.path}:{finding.line} suppression of {finding.rule_id} "
            f"has a throwaway reason {suppression.reason!r}"
        )


def test_all_five_rules_executed(repo_result):
    result, _ = repo_result
    summary = result.as_dict()["summary"]
    # The repo currently carries baselined RL005 findings and suppressed
    # RL001/RL002/RL004 findings; their presence proves the checkers ran.
    assert summary["rules"], "no checker produced any accounting"
    assert summary["n_unbaselined"] == 0
