"""CLI behavior: exit codes, rule selection, JSON shape (golden), baseline
workflow end to end."""

import json
from pathlib import Path


from repro.analysis.cli import main

FIXTURES = Path(__file__).parent / "fixtures"
VIOLATION = FIXTURES / "rl005_violation.py"
CLEAN = FIXTURES / "rl005_clean.py"
GOLDEN = Path(__file__).parent / "golden" / "rl005_violation.json"


def _run(capsys, *argv):
    code = main(list(argv))
    captured = capsys.readouterr()
    return code, captured.out, captured.err


def test_clean_file_exits_zero(capsys):
    code, out, _err = _run(
        capsys, str(CLEAN), "--no-baseline", "--root", str(FIXTURES)
    )
    assert code == 0
    assert "0 unbaselined" in out


def test_violations_exit_one(capsys):
    code, out, _err = _run(
        capsys, str(VIOLATION), "--no-baseline", "--root", str(FIXTURES)
    )
    assert code == 1
    assert "RL005" in out


def test_unknown_rule_exits_two(capsys):
    code, _out, err = _run(capsys, str(CLEAN), "--rule", "RL999")
    assert code == 2
    assert "unknown rule" in err


def test_missing_path_exits_two(capsys):
    code, _out, err = _run(capsys, str(FIXTURES / "no_such_file.py"))
    assert code == 2
    assert "no such path" in err


def test_rule_selection_limits_output(capsys):
    # The RL005 fixture seeds no RL004 violations, so selecting RL004 only
    # must come back clean.
    code, _out, _err = _run(
        capsys,
        str(VIOLATION),
        "--rule",
        "RL004",
        "--no-baseline",
        "--root",
        str(FIXTURES),
    )
    assert code == 0


def test_list_rules(capsys):
    code, out, _err = _run(capsys, "--list-rules")
    assert code == 0
    for rule_id in ("RL001", "RL002", "RL003", "RL004", "RL005"):
        assert rule_id in out


def test_json_output_matches_golden(capsys):
    code, out, _err = _run(
        capsys,
        str(VIOLATION),
        "--format",
        "json",
        "--no-baseline",
        "--root",
        str(FIXTURES),
    )
    assert code == 1
    produced = json.loads(out)
    expected = json.loads(GOLDEN.read_text(encoding="utf-8"))
    assert produced == expected


def test_baseline_workflow_end_to_end(tmp_path, capsys):
    baseline_path = tmp_path / "baseline.json"

    # 1. Fails without a baseline.
    code, _out, _err = _run(
        capsys,
        str(VIOLATION),
        "--baseline",
        str(baseline_path),
        "--root",
        str(FIXTURES),
    )
    assert code == 1

    # 2. --update-baseline records the findings (with FIXME reasons).
    code, _out, err = _run(
        capsys,
        str(VIOLATION),
        "--baseline",
        str(baseline_path),
        "--update-baseline",
        "--root",
        str(FIXTURES),
    )
    assert code == 0
    assert "baseline updated" in err
    data = json.loads(baseline_path.read_text(encoding="utf-8"))
    assert len(data["entries"]) == 2

    # 3. The same findings now warn instead of failing.
    code, out, _err = _run(
        capsys,
        str(VIOLATION),
        "--baseline",
        str(baseline_path),
        "--root",
        str(FIXTURES),
    )
    assert code == 0
    assert "[baselined]" in out

    # 4. Against the clean file every entry is expired -> fail again.
    code, out, _err = _run(
        capsys,
        str(CLEAN),
        "--baseline",
        str(baseline_path),
        "--root",
        str(FIXTURES),
    )
    assert code == 1
    assert "matches no current finding" in out
