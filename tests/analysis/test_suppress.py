"""Suppression-comment semantics: spans, reasons, and malformed markers."""

import ast
import textwrap

import pytest

from repro.analysis.loader import ModuleInfo
from repro.analysis.suppress import (
    SuppressionError,
    effective_lines,
    parse_suppressions,
)


def _module(source: str):
    source = textwrap.dedent(source)
    return ModuleInfo(
        path=None,
        rel_path="mod.py",
        name="mod",
        tree=ast.parse(source),
        lines=source.splitlines(),
    )


def test_same_line_suppression():
    module = _module(
        """
        x = compute()  # reprolint: disable=RL003(writable scratch buffer)
        """
    )
    covered = effective_lines(module)
    assert (2, "RL003") in covered
    assert covered[(2, "RL003")].reason == "writable scratch buffer"


def test_multiple_rules_in_one_comment():
    module = _module(
        """
        x = compute()  # reprolint: disable=RL001(lock held via alias), RL002(id-ordered)
        """
    )
    covered = effective_lines(module)
    assert covered[(2, "RL001")].reason == "lock held via alias"
    assert covered[(2, "RL002")].reason == "id-ordered"


def test_with_statement_span_covers_the_block():
    module = _module(
        """
        def f(self, other):
            with self._a, other._a:  # reprolint: disable=RL001(both held)
                self._x = 1
                other._x = 2
        """
    )
    covered = effective_lines(module)
    assert (3, "RL001") in covered
    assert (4, "RL001") in covered
    assert (5, "RL001") in covered


def test_compound_statements_do_not_expand():
    module = _module(
        """
        def f(self):
            if True:  # reprolint: disable=RL001(header only)
                self._x = 1
        """
    )
    covered = effective_lines(module)
    assert (3, "RL001") in covered
    assert (4, "RL001") not in covered  # the if-body is NOT blanketed


def test_standalone_comment_covers_next_line():
    module = _module(
        """
        def f(self):
            # reprolint: disable=RL001(warmup path is single-threaded)
            self._x = 1
        """
    )
    covered = effective_lines(module)
    assert (4, "RL001") in covered


def test_missing_reason_is_a_hard_error():
    module = _module(
        """
        x = 1  # reprolint: disable=RL001()
        """
    )
    with pytest.raises(SuppressionError, match="reason"):
        parse_suppressions(module)


def test_bare_rule_without_parens_is_a_hard_error():
    module = _module(
        """
        x = 1  # reprolint: disable=RL001
        """
    )
    with pytest.raises(SuppressionError):
        parse_suppressions(module)


def test_docstring_mention_is_not_a_suppression():
    module = _module(
        '''
        def f():
            """Suppress with ``# reprolint: disable=RL001(reason)``."""
            return 1
        '''
    )
    assert parse_suppressions(module) == {}
