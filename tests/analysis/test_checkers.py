"""Golden-fixture tests: every rule flags its seeded-violation file and
stays silent on its clean counterpart."""

from pathlib import Path

import pytest

from repro.analysis import run_analysis

FIXTURES = Path(__file__).parent / "fixtures"

CASES = {
    "RL001": (FIXTURES / "rl001_violation.py", FIXTURES / "rl001_clean.py"),
    "RL002": (FIXTURES / "rl002_violation.py", FIXTURES / "rl002_clean.py"),
    "RL003": (FIXTURES / "rl003_violation.py", FIXTURES / "rl003_clean.py"),
    "RL004": (
        FIXTURES / "repro" / "net" / "rl004_violation.py",
        FIXTURES / "repro" / "net" / "rl004_clean.py",
    ),
    "RL005": (FIXTURES / "rl005_violation.py", FIXTURES / "rl005_clean.py"),
}


def _findings(path: Path, rule: str):
    result = run_analysis([path], rules=[rule], root=FIXTURES)
    return result.findings


@pytest.mark.parametrize("rule", sorted(CASES))
def test_violation_fixture_is_flagged(rule):
    violation, _ = CASES[rule]
    found = _findings(violation, rule)
    assert found, f"{rule} missed every seeded violation in {violation.name}"
    assert all(f.rule_id == rule for f in found)


@pytest.mark.parametrize("rule", sorted(CASES))
def test_clean_fixture_passes(rule):
    _, clean = CASES[rule]
    assert _findings(clean, rule) == [], f"{rule} false-positive on clean file"


def test_rl001_flags_both_inference_and_registry():
    found = _findings(CASES["RL001"][0], "RL001")
    symbols = {f.symbol for f in found}
    assert "Telemetry.peek" in symbols  # inferred guard
    assert "LatencyStats.reset" in symbols  # registry guard


def test_rl001_reports_line_and_fix_hint():
    found = _findings(CASES["RL001"][0], "RL001")
    peek = next(f for f in found if f.symbol == "Telemetry.peek")
    assert peek.line > 0
    assert peek.path.endswith("rl001_violation.py")
    assert "lock" in peek.hint


def test_rl002_names_both_locks_in_the_cycle():
    found = _findings(CASES["RL002"][0], "RL002")
    assert len(found) == 1
    message = found[0].message
    assert "Pipeline._data_lock" in message
    assert "Pipeline._stats_lock" in message


def test_rl003_flags_every_seeded_mutation():
    found = _findings(CASES["RL003"][0], "RL003")
    # patch_layout seeds 5, patch_via_alias 1, IndexShard.poke 1.
    assert len(found) == 7, [f.render() for f in found]
    assert {f.symbol for f in found} == {
        "patch_layout",
        "patch_via_alias",
        "IndexShard.poke",
    }


def test_rl004_scopes_to_repro_net():
    # The same blocking code outside the repro.net prefix is not flagged.
    source = (CASES["RL004"][0]).read_text(encoding="utf-8")
    outside = FIXTURES / "rl001_clean.py"  # any non-net module location
    copy = outside.parent / "_tmp_outside_net.py"
    copy.write_text(source, encoding="utf-8")
    try:
        assert _findings(copy, "RL004") == []
    finally:
        copy.unlink()


def test_rl004_flags_each_blocking_shape():
    found = _findings(CASES["RL004"][0], "RL004")
    messages = " | ".join(f.message for f in found)
    assert "time.sleep()" in messages
    assert "pickle.dumps()" in messages
    assert ".serve()" in messages
    assert ".shutdown()" in messages


def test_rl005_distinguishes_missing_vs_incomplete_getstate():
    found = _findings(CASES["RL005"][0], "RL005")
    by_symbol = {f.symbol: f.message for f in found}
    assert "defines no __getstate__" in by_symbol["Engine"]
    assert "does not drop" in by_symbol["Holder"]
