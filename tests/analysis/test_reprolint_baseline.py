"""Baseline semantics: load/save, mandatory reasons, apply/expire, update."""

import json

import pytest

from repro.analysis import Baseline, BaselineEntry, Finding
from repro.analysis.baseline import BaselineError


def _finding(message="m", symbol="C.f", ordinal=0):
    return Finding(
        rule_id="RL001",
        path="src/x.py",
        line=10,
        col=4,
        symbol=symbol,
        message=message,
        ordinal=ordinal,
    )


def _entry_for(finding, reason="known and justified"):
    return BaselineEntry(
        fingerprint=finding.fingerprint,
        rule=finding.rule_id,
        path=finding.path,
        symbol=finding.symbol,
        reason=reason,
    )


def test_apply_marks_matches_and_reports_expired():
    current = _finding("current")
    fixed = _finding("already fixed")
    baseline = Baseline([_entry_for(current), _entry_for(fixed)])
    expired = baseline.apply([current])
    assert current.baselined
    assert current.baseline_reason == "known and justified"
    assert expired == [fixed.fingerprint]


def test_fingerprints_survive_line_drift():
    before = _finding()
    after = _finding()
    after.line, after.col = 99, 0  # unrelated edits moved the code
    assert before.fingerprint == after.fingerprint


def test_ordinal_disambiguates_identical_findings():
    first = _finding(ordinal=0)
    second = _finding(ordinal=1)
    assert first.fingerprint != second.fingerprint


def test_roundtrip(tmp_path):
    finding = _finding()
    baseline = Baseline([_entry_for(finding)])
    path = tmp_path / "baseline.json"
    baseline.save(path)
    loaded = Baseline.load(path)
    assert loaded.lookup(finding).reason == "known and justified"


def test_missing_file_loads_empty(tmp_path):
    baseline = Baseline.load(tmp_path / "absent.json")
    assert baseline.entries == []


def test_empty_reason_rejected(tmp_path):
    path = tmp_path / "baseline.json"
    payload = {
        "version": 1,
        "entries": [
            {
                "fingerprint": "abc",
                "rule": "RL001",
                "path": "x.py",
                "symbol": "C",
                "reason": "   ",
            }
        ],
    }
    path.write_text(json.dumps(payload))
    with pytest.raises(BaselineError, match="reason"):
        Baseline.load(path)


def test_malformed_json_rejected(tmp_path):
    path = tmp_path / "baseline.json"
    path.write_text("{not json")
    with pytest.raises(BaselineError, match="JSON"):
        Baseline.load(path)


def test_from_findings_keeps_existing_reasons_and_stamps_new():
    old = _finding("old")
    new = _finding("new")
    reasons = {old.fingerprint: "carried over"}
    updated = Baseline.from_findings([old, new], reasons)
    by_fp = {entry.fingerprint: entry.reason for entry in updated.entries}
    assert by_fp[old.fingerprint] == "carried over"
    assert "FIXME" in by_fp[new.fingerprint]
