from pathlib import Path

import pytest

FIXTURES = Path(__file__).parent / "fixtures"


@pytest.fixture(scope="session")
def fixtures_root() -> Path:
    return FIXTURES
