"""Unit tests for the reprolint engine internals: import/alias resolution,
the with-context tracker, and the cross-module call graph."""

import ast
import textwrap

from repro.analysis.callgraph import ProjectIndex
from repro.analysis.contexts import iter_nodes_with_contexts
from repro.analysis.loader import ModuleInfo, module_name_for
from repro.analysis.scopes import build_import_table, function_scope, render


def _module(source: str, name: str = "pkg.mod", rel: str = "pkg/mod.py"):
    source = textwrap.dedent(source)
    return ModuleInfo(
        path=None,
        rel_path=rel,
        name=name,
        tree=ast.parse(source),
        lines=source.splitlines(),
    )


def _func(source: str):
    tree = ast.parse(textwrap.dedent(source))
    return next(
        node
        for node in tree.body
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
    )


# --------------------------------------------------------------------- #
# imports and aliases
# --------------------------------------------------------------------- #
class TestImportTable:
    def test_plain_and_aliased_imports(self):
        tree = ast.parse("import numpy as np\nimport pickle\n")
        table = build_import_table(tree, "repro.x")
        assert table["np"] == "numpy"
        assert table["pickle"] == "pickle"

    def test_from_import_with_alias(self):
        tree = ast.parse("from threading import Lock as L\n")
        table = build_import_table(tree, "repro.x")
        assert table["L"] == "threading.Lock"

    def test_relative_import_resolves_against_module_name(self):
        tree = ast.parse("from ..utils.timer import LatencyStats\n")
        table = build_import_table(tree, "repro.serving.service")
        assert table["LatencyStats"] == "repro.utils.timer.LatencyStats"

    def test_single_dot_relative_import(self):
        tree = ast.parse("from .cache import ResultCache\n")
        table = build_import_table(tree, "repro.serving.service")
        assert table["ResultCache"] == "repro.serving.cache.ResultCache"


class TestFunctionScope:
    def test_alias_renders_through(self):
        func = _func(
            """
            def f(self):
                lock = self._lock
                with lock:
                    pass
            """
        )
        scope = function_scope(func, {})
        with_node = func.body[1]
        assert render(with_node.items[0].context_expr, scope) == "self._lock"

    def test_conflicting_rebind_poisons_the_alias(self):
        func = _func(
            """
            def f(self, other):
                lock = self._lock
                lock = other._lock
                with lock:
                    pass
            """
        )
        scope = function_scope(func, {})
        # `lock` no longer reliably denotes either expression.
        assert scope.resolve_name("lock") == "lock"

    def test_unrenderable_rebind_poisons_too(self):
        func = _func(
            """
            def f(self, items):
                lock = self._lock
                lock = items[0]
                with lock:
                    pass
            """
        )
        scope = function_scope(func, {})
        assert scope.resolve_name("lock") == "lock"

    def test_import_alias_reaches_call_rendering(self):
        func = _func(
            """
            def f(path):
                return np.load(path)
            """
        )
        scope = function_scope(func, {"np": "numpy"})
        call = func.body[0].value
        assert render(call.func, scope) == "numpy.load"


# --------------------------------------------------------------------- #
# with-context tracking
# --------------------------------------------------------------------- #
def _held_at(func, predicate):
    scope = function_scope(func, {})
    for node, held, _stmt in iter_nodes_with_contexts(func, scope):
        if predicate(node):
            return held
    raise AssertionError("no node matched the predicate")


class TestContextTracker:
    def test_nested_withs_stack_outermost_first(self):
        func = _func(
            """
            def f(self):
                with self._outer:
                    with self._inner:
                        touch()
            """
        )
        held = _held_at(
            func,
            lambda n: isinstance(n, ast.Call)
            and isinstance(n.func, ast.Name)
            and n.func.id == "touch",
        )
        assert held == ("self._outer", "self._inner")

    def test_multi_item_with_orders_left_to_right(self):
        func = _func(
            """
            def f(self, other):
                with self._lock, other._lock:
                    touch()
            """
        )
        held = _held_at(
            func,
            lambda n: isinstance(n, ast.Call)
            and isinstance(n.func, ast.Name)
            and n.func.id == "touch",
        )
        assert held == ("self._lock", "other._lock")

    def test_second_item_expression_holds_only_the_first(self):
        func = _func(
            """
            def f(self, other):
                with self._lock, other._lock:
                    pass
            """
        )
        # The *evaluation* of `other._lock` happens while only `self._lock`
        # is held — the tracker must not claim both.
        scope = function_scope(func, {})
        for node, held, _stmt in iter_nodes_with_contexts(func, scope):
            if isinstance(node, ast.Attribute) and node.attr == "_lock":
                base = node.value
                if isinstance(base, ast.Name) and base.id == "other":
                    assert held == ("self._lock",)
                    return
        raise AssertionError("other._lock never yielded")

    def test_renamed_context_through_alias(self):
        func = _func(
            """
            def f(self):
                guard = self._index_lock
                with guard.read():
                    touch()
            """
        )
        held = _held_at(
            func,
            lambda n: isinstance(n, ast.Call)
            and isinstance(n.func, ast.Name)
            and n.func.id == "touch",
        )
        assert held == ("self._index_lock.read()",)

    def test_nested_function_bodies_are_not_entered(self):
        func = _func(
            """
            def f(self):
                with self._lock:
                    def inner():
                        touch()
                    return inner
            """
        )
        scope = function_scope(func, {})
        seen_touch = any(
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Name)
            and node.func.id == "touch"
            for node, _held, _stmt in iter_nodes_with_contexts(func, scope)
        )
        assert not seen_touch  # the closure runs later, not under the lock

    def test_except_handler_bodies_keep_the_held_stack(self):
        func = _func(
            """
            def f(self):
                with self._lock:
                    try:
                        risky()
                    except ValueError:
                        cleanup()
            """
        )
        held = _held_at(
            func,
            lambda n: isinstance(n, ast.Call)
            and isinstance(n.func, ast.Name)
            and n.func.id == "cleanup",
        )
        assert held == ("self._lock",)

    def test_unrenderable_item_tracks_as_unknown(self):
        func = _func(
            """
            def f(self, locks):
                with locks[0]:
                    touch()
            """
        )
        held = _held_at(
            func,
            lambda n: isinstance(n, ast.Call)
            and isinstance(n.func, ast.Name)
            and n.func.id == "touch",
        )
        assert held == ("<unknown>",)


# --------------------------------------------------------------------- #
# loader naming + call graph
# --------------------------------------------------------------------- #
class TestCallGraph:
    def test_module_name_from_package_ancestry(self, tmp_path):
        pkg = tmp_path / "top" / "sub"
        pkg.mkdir(parents=True)
        (tmp_path / "top" / "__init__.py").write_text("")
        (pkg / "__init__.py").write_text("")
        target = pkg / "leaf.py"
        target.write_text("x = 1\n")
        assert module_name_for(target) == "top.sub.leaf"

    def test_self_method_call_resolves_with_held_locks(self):
        module = _module(
            """
            import threading

            class Service:
                def __init__(self):
                    self._lock = threading.Lock()

                def outer(self):
                    with self._lock:
                        self._helper()

                def _helper(self):
                    return 1
            """
        )
        index = ProjectIndex([module])
        sites = index.callers_of["pkg.mod.Service._helper"]
        assert len(sites) == 1
        assert sites[0].held == ("self._lock",)
        assert sites[0].caller.name == "outer"

    def test_attribute_typed_call_resolves_across_classes(self):
        module = _module(
            """
            class Cache:
                def get(self, key):
                    return None

            class Service:
                def __init__(self):
                    self._cache = Cache()

                def lookup(self, key):
                    return self._cache.get(key)
            """
        )
        index = ProjectIndex([module])
        assert "pkg.mod.Cache.get" in index.callers_of
        [site] = index.callers_of["pkg.mod.Cache.get"]
        assert site.caller.qualname == "pkg.mod.Service.lookup"

    def test_unresolvable_calls_stay_unresolved(self):
        module = _module(
            """
            def f(thing):
                return thing.frobnicate()
            """
        )
        index = ProjectIndex([module])
        assert index.calls == []
