"""Tests for the application modules: spam detection, author popularity, recommendations."""

import numpy as np
import pytest

from repro.apps import (
    AuthorPopularityAnalyzer,
    ProductInfluenceAnalyzer,
    SpamDetector,
)
from repro.core import IndexParams
from repro.graph.generators import copurchase_graph


SMALL_PARAMS = IndexParams(capacity=10, hub_budget=4)


class TestSpamDetector:
    @pytest.fixture(scope="class")
    def detector(self, labelled_spam_graph):
        graph, labels = labelled_spam_graph
        return SpamDetector(graph, labels, k=5, params=SMALL_PARAMS)

    def test_rejects_mismatched_labels(self, labelled_spam_graph):
        graph, _ = labelled_spam_graph
        with pytest.raises(ValueError):
            SpamDetector(graph, np.zeros(3), k=5)

    def test_spam_ratio_in_unit_interval(self, detector, labelled_spam_graph):
        _, labels = labelled_spam_graph
        spam_host = int(np.flatnonzero(labels == 1)[0])
        ratio = detector.spam_ratio(spam_host)
        assert 0.0 <= ratio <= 1.0

    def test_spam_farm_target_has_spammy_reverse_set(self, detector, labelled_spam_graph):
        # The spam host with the highest in-degree is the link-farm target;
        # its reverse top-k set must be dominated by other spam hosts.
        graph, labels = labelled_spam_graph
        spam_hosts = np.flatnonzero(labels == 1)
        target = int(spam_hosts[np.argmax(graph.in_degree[spam_hosts])])
        assert detector.spam_ratio(target) > 0.5

    def test_evaluate_report_structure(self, detector):
        report = detector.evaluate(max_queries_per_class=5)
        assert report.spam_queries == 5
        assert report.normal_queries == 5
        assert 0.0 <= report.mean_spam_ratio_for_spam <= 1.0
        assert report.separation() == pytest.approx(
            report.mean_spam_ratio_for_spam - report.mean_spam_ratio_for_normal
        )

    def test_separation_is_positive(self, detector):
        report = detector.evaluate(max_queries_per_class=8)
        assert report.separation() > 0.0

    def test_classify_uses_threshold(self, detector, labelled_spam_graph):
        _, labels = labelled_spam_graph
        spam_host = int(np.flatnonzero(labels == 1)[0])
        assert detector.classify(spam_host, threshold=0.0) is True
        assert detector.classify(spam_host, threshold=1.0) in (True, False)

    def test_explicit_samples_respected(self, detector, labelled_spam_graph):
        _, labels = labelled_spam_graph
        spam = np.flatnonzero(labels == 1)[:2].tolist()
        normal = np.flatnonzero(labels == 0)[:3].tolist()
        report = detector.evaluate(spam_sample=spam, normal_sample=normal)
        assert report.spam_queries == 2
        assert report.normal_queries == 3


class TestAuthorPopularity:
    @pytest.fixture(scope="class")
    def analyzer(self, weighted_coauthor_graph):
        graph, _ = weighted_coauthor_graph
        return AuthorPopularityAnalyzer(graph, k=4, params=SMALL_PARAMS)

    def test_ranking_sorted_by_list_size(self, analyzer):
        ranking = analyzer.ranking(top=5)
        sizes = [record.reverse_top_k_size for record in ranking]
        assert sizes == sorted(sizes, reverse=True)

    def test_ranking_length(self, analyzer):
        assert len(analyzer.ranking(top=3)) == 3

    def test_popularity_record_fields(self, analyzer, weighted_coauthor_graph):
        graph, _ = weighted_coauthor_graph
        record = analyzer.popularity(0)
        assert record.author == 0
        assert record.name == graph.name_of(0)
        assert record.n_coauthors == int(graph.out_degree[0])
        assert record.indirect_reach >= 0

    def test_prolific_author_tops_ranking(self, analyzer, weighted_coauthor_graph):
        graph, paper_counts = weighted_coauthor_graph
        prolific = int(np.argmax(paper_counts))
        top_authors = [record.author for record in analyzer.ranking(top=5)]
        assert prolific in top_authors

    def test_reverse_size_can_exceed_degree(self, analyzer, weighted_coauthor_graph):
        # The Table 3 effect: at least one author is known well beyond co-authors.
        graph, _ = weighted_coauthor_graph
        mapping = analyzer.popularity_versus_degree()
        assert any(size > degree for size, degree in mapping.values())

    def test_subset_ranking(self, analyzer):
        ranking = analyzer.ranking(top=2, authors=[0, 1, 2, 3])
        assert len(ranking) == 2
        assert all(record.author in {0, 1, 2, 3} for record in ranking)


class TestProductInfluence:
    @pytest.fixture(scope="class")
    def analyzer(self):
        graph, _ = copurchase_graph(60, seed=8)
        return ProductInfluenceAnalyzer(graph, k=5, params=SMALL_PARAMS)

    def test_influencers_sorted_by_proximity(self, analyzer):
        record = analyzer.influencers(0)
        values = record.proximities
        assert all(values[i] >= values[i + 1] for i in range(len(values) - 1))

    def test_top_truncation(self, analyzer):
        record = analyzer.influencers(3)
        assert len(record.top(2)) <= 2

    def test_promotion_bundle_excludes_product(self, analyzer):
        bundle = analyzer.promotion_bundle(5, size=3)
        assert 5 not in bundle
        assert len(bundle) <= 3

    def test_influence_scores_keys(self, analyzer):
        scores = analyzer.influence_scores([0, 1, 2])
        assert set(scores) == {0, 1, 2}
        assert all(size >= 0 for size in scores.values())

    def test_invalid_product_rejected(self, analyzer):
        from repro.exceptions import InvalidParameterError

        with pytest.raises(InvalidParameterError):
            analyzer.influencers(10_000)
