"""Unit tests for the partitioned index shards and the query router."""

import pickle

import numpy as np
import pytest

from repro.core import (
    IndexParams,
    ReverseTopKEngine,
    ShardedReverseTopKEngine,
    ShardedReverseTopKIndex,
    build_index,
    build_sharded_index,
    shard_boundaries,
)
from repro.core.sharding import _META_NAME
from repro.exceptions import InvalidParameterError, SerializationError
from repro.graph import copying_web_graph, transition_matrix


@pytest.fixture(scope="module")
def medium_setup():
    graph = copying_web_graph(123, out_degree=4, seed=17)
    matrix = transition_matrix(graph)
    params = IndexParams(capacity=10, hub_budget=4)
    index = build_index(graph, params, transition=matrix)
    return graph, matrix, params, index


class TestShardBoundaries:
    def test_even_split(self):
        np.testing.assert_array_equal(shard_boundaries(12, 4), [0, 3, 6, 9, 12])

    def test_uneven_split_front_loads_remainder(self):
        np.testing.assert_array_equal(shard_boundaries(10, 3), [0, 4, 7, 10])

    def test_more_shards_than_nodes_clamps(self):
        np.testing.assert_array_equal(shard_boundaries(3, 8), [0, 1, 2, 3])

    def test_single_shard(self):
        np.testing.assert_array_equal(shard_boundaries(5, 1), [0, 5])

    def test_invalid_inputs_rejected(self):
        with pytest.raises(ValueError):
            shard_boundaries(0, 2)
        with pytest.raises(ValueError):
            shard_boundaries(5, 0)


class TestShardedIndexRam:
    def test_from_index_columns_match_monolithic_slices(self, medium_setup):
        _, _, _, index = medium_setup
        sharded = ShardedReverseTopKIndex.from_index(index, 5)
        assert sharded.n_shards == 5
        columns = index.columns
        for shard in sharded.shards:
            view = shard.columns
            np.testing.assert_array_equal(
                np.asarray(view.lower), columns.lower[:, shard.start : shard.stop]
            )
            np.testing.assert_array_equal(
                np.asarray(view.residual_mass),
                columns.residual_mass[shard.start : shard.stop],
            )
            np.testing.assert_array_equal(
                np.asarray(view.is_exact), columns.is_exact[shard.start : shard.stop]
            )

    def test_state_routing_matches_monolithic(self, medium_setup):
        _, _, _, index = medium_setup
        sharded = ShardedReverseTopKIndex.from_index(index, 4)
        for node in (0, 30, 61, 62, 122):
            mono = index.state(node)
            routed = sharded.state(node)
            assert routed.residual == mono.residual
            assert routed.retained == mono.retained
            assert routed.hub_ink == mono.hub_ink
            assert routed.is_hub == mono.is_hub

    def test_kth_lower_bounds_concatenate_across_shards(self, medium_setup):
        _, _, _, index = medium_setup
        sharded = ShardedReverseTopKIndex.from_index(index, 7)
        for k in (1, 5, index.capacity):
            np.testing.assert_array_equal(
                sharded.kth_lower_bounds(k), index.kth_lower_bounds(k)
            )
        with pytest.raises(InvalidParameterError):
            sharded.kth_lower_bounds(index.capacity + 1)

    def test_set_state_bumps_global_version_once(self, medium_setup):
        _, _, _, index = medium_setup
        sharded = ShardedReverseTopKIndex.from_index(index, 3)
        assert sharded.version == 0
        state = sharded.state(50)
        sharded.set_state(50, state)
        assert sharded.version == 1
        sharded.sync_state(100)
        assert sharded.version == 2

    def test_replace_contents_validations(self, medium_setup):
        _, _, _, index = medium_setup
        sharded = ShardedReverseTopKIndex.from_index(index, 3)
        with pytest.raises(ValueError):
            sharded.replace_contents(states=[])
        with pytest.raises(ValueError):
            sharded.replace_contents(hub_deficit=np.zeros(len(index.hubs) + 1))

    def test_replace_contents_single_version_bump_and_reroute(self, medium_setup):
        _, _, _, index = medium_setup
        sharded = ShardedReverseTopKIndex.from_index(index, 3)
        states = [state for _, state in sharded.states()]
        sharded.replace_contents(states=states)
        assert sharded.version == 1
        # Columns rebuilt per shard from the given states.
        columns = index.columns
        for shard in sharded.shards:
            np.testing.assert_array_equal(
                np.asarray(shard.columns.lower),
                columns.lower[:, shard.start : shard.stop],
            )

    def test_adopt_swaps_in_place_with_one_bump(self, medium_setup):
        graph, matrix, params, index = medium_setup
        sharded = ShardedReverseTopKIndex.from_index(index, 3)
        fresh = build_sharded_index(graph, params, transition=matrix, n_shards=3)
        sharded.set_state(0, sharded.state(0))  # version -> 1
        sharded.adopt(fresh)
        assert sharded.version == 2
        assert sharded.shards is not fresh.shards

    def test_storage_accounting_matches_monolithic(self, medium_setup):
        _, _, _, index = medium_setup
        sharded = ShardedReverseTopKIndex.from_index(index, 4)
        assert sharded.storage_bytes() == index.storage_bytes()

    def test_to_index_round_trips_answers(self, medium_setup):
        _, matrix, _, index = medium_setup
        sharded = ShardedReverseTopKIndex.from_index(index, 4)
        back = sharded.to_index()
        a = ReverseTopKEngine(matrix, index).query(9, 5, update_index=False)
        b = ReverseTopKEngine(matrix, back).query(9, 5, update_index=False)
        np.testing.assert_array_equal(a.nodes, b.nodes)


class TestShardedLayoutOnDisk:
    def test_memmap_round_trip_is_bitwise(self, medium_setup, tmp_path):
        _, _, _, index = medium_setup
        sharded = ShardedReverseTopKIndex.from_index(index, 4)
        sharded.persist(tmp_path / "layout")
        loaded = ShardedReverseTopKIndex.load(tmp_path / "layout", memory_budget=0)
        assert all(shard.backing == "memmap" for shard in loaded.shards)
        columns = index.columns
        for shard in loaded.shards:
            np.testing.assert_array_equal(
                np.asarray(shard.columns.lower),
                columns.lower[:, shard.start : shard.stop],
            )
        for node in (0, 40, 122):
            assert loaded.state(node).retained == index.state(node).retained

    def test_load_without_budget_materialises_to_ram(self, medium_setup, tmp_path):
        _, _, _, index = medium_setup
        ShardedReverseTopKIndex.from_index(index, 3).persist(tmp_path / "ram")
        loaded = ShardedReverseTopKIndex.load(tmp_path / "ram")
        assert all(shard.backing == "ram" for shard in loaded.shards)

    def test_lazy_load_keeps_resident_bytes_below_total(self, medium_setup, tmp_path):
        _, _, _, index = medium_setup
        ShardedReverseTopKIndex.from_index(index, 4).persist(tmp_path / "lazy")
        loaded = ShardedReverseTopKIndex.load(tmp_path / "lazy", memory_budget=0)
        assert loaded.resident_bytes() < loaded.total_bytes()

    def test_write_back_promotes_shard_but_disk_layout_is_immutable(
        self, medium_setup, tmp_path
    ):
        _, _, _, index = medium_setup
        directory = tmp_path / "immutable"
        ShardedReverseTopKIndex.from_index(index, 4).persist(directory)
        snapshot = {
            path.name: path.read_bytes() for path in sorted(directory.iterdir())
        }
        loaded = ShardedReverseTopKIndex.load(directory, memory_budget=0)
        node = 5
        state = loaded.state(node)
        state.lower_bounds = np.full(loaded.capacity, 0.5)
        loaded.set_state(node, state)
        shard, local = loaded.shard_of(node)
        assert shard.is_promoted
        assert float(np.asarray(shard.columns.lower)[0, local]) == 0.5
        # Every byte on disk is untouched: the layout is content-addressed.
        for path in sorted(directory.iterdir()):
            assert path.read_bytes() == snapshot[path.name], path.name

    def test_sync_state_preserves_in_place_mutations_on_memmap(
        self, medium_setup, tmp_path
    ):
        # Regression: lazy shards used to hand out ephemeral state copies,
        # so the monolithic contract (mutate in place, then sync_state)
        # silently dropped the mutation while still bumping the version.
        _, _, _, index = medium_setup
        ShardedReverseTopKIndex.from_index(index, 3).persist(tmp_path / "sync")
        loaded = ShardedReverseTopKIndex.load(tmp_path / "sync", memory_budget=0)
        node = 7
        state = loaded.state(node)
        assert loaded.state(node) is state  # pinned: one identity per node
        state.residual.clear()
        loaded.sync_state(node)
        assert loaded.state(node).residual == {}
        shard, local = loaded.shard_of(node)
        assert bool(np.asarray(shard.columns.is_exact)[local])

    def test_state_arrays_stay_memmapped_per_node(self, medium_setup, tmp_path):
        # Regression: the first state() touch used to decompress the whole
        # shard's states into RAM; now the arrays stay memory-mapped and a
        # single candidate materialises by slicing one node's rows.
        _, _, _, index = medium_setup
        ShardedReverseTopKIndex.from_index(index, 3).persist(tmp_path / "pernode")
        loaded = ShardedReverseTopKIndex.load(tmp_path / "pernode", memory_budget=0)
        shard, _ = loaded.shard_of(0)
        loaded.state(0)
        assert all(
            isinstance(array, np.memmap) for array in shard._state_arrays.values()
        )
        # Resident cost is the one pinned state, not the shard's arrays.
        assert shard.resident_bytes() < shard.n_nodes * loaded.capacity

    def test_directory_without_budget_archives_ram_build(
        self, medium_setup, tmp_path
    ):
        # Regression: build_sharded_index used to silently drop directory=
        # when no memory_budget was given.
        graph, matrix, params, _ = medium_setup
        built = build_sharded_index(
            graph,
            params,
            transition=matrix,
            n_shards=3,
            directory=tmp_path / "archived",
        )
        assert built.directory is not None
        assert all(shard.backing == "ram" for shard in built.shards)
        reloaded = ShardedReverseTopKIndex.load(
            tmp_path / "archived", memory_budget=0
        )
        np.testing.assert_array_equal(
            reloaded.kth_lower_bounds(5), built.kth_lower_bounds(5)
        )

    def test_missing_meta_is_a_serialization_error(self, medium_setup, tmp_path):
        _, _, _, index = medium_setup
        directory = tmp_path / "torn"
        ShardedReverseTopKIndex.from_index(index, 2).persist(directory)
        (directory / _META_NAME).unlink()
        with pytest.raises(SerializationError):
            ShardedReverseTopKIndex.load(directory)

    def test_missing_shard_file_is_a_serialization_error(
        self, medium_setup, tmp_path
    ):
        _, _, _, index = medium_setup
        directory = tmp_path / "hole"
        ShardedReverseTopKIndex.from_index(index, 2).persist(directory)
        (directory / "shard-00001.lower.npy").unlink()
        with pytest.raises(SerializationError):
            ShardedReverseTopKIndex.load(directory, memory_budget=0)

    def test_memmap_requires_directory(self, medium_setup):
        _, _, _, index = medium_setup
        with pytest.raises(InvalidParameterError):
            ShardedReverseTopKIndex.from_index(index, 2, memory_budget=0)

    def test_clean_memmap_shards_pickle_by_reference(self, medium_setup, tmp_path):
        _, matrix, _, index = medium_setup
        directory = tmp_path / "pickle"
        ShardedReverseTopKIndex.from_index(index, 4).persist(directory)
        loaded = ShardedReverseTopKIndex.load(directory, memory_budget=0)
        engine = ShardedReverseTopKEngine(matrix, loaded, scan_workers=2)
        blob = pickle.dumps(engine)
        clone = pickle.loads(blob)
        assert clone.scan_workers == 2
        a = ReverseTopKEngine(matrix, index).query(3, 5, update_index=False)
        b = clone.query_many_readonly([3], 5)[0]
        np.testing.assert_array_equal(a.nodes, b.nodes)
        # A clean memmap engine ships paths, not arrays: far smaller than
        # the monolithic engine's payload.
        assert len(blob) < len(pickle.dumps(ReverseTopKEngine(matrix, index)))
        engine.close()
        clone.close()


class TestBuildShardedIndex:
    def test_direct_build_matches_split_monolith(self, medium_setup):
        graph, matrix, params, index = medium_setup
        split = ShardedReverseTopKIndex.from_index(index, 5)
        direct = build_sharded_index(graph, params, transition=matrix, n_shards=5)
        for a, b in zip(split.shards, direct.shards):
            np.testing.assert_array_equal(
                np.asarray(a.columns.lower), np.asarray(b.columns.lower)
            )
            np.testing.assert_array_equal(
                np.asarray(a.columns.residual_mass),
                np.asarray(b.columns.residual_mass),
            )
            np.testing.assert_array_equal(
                np.asarray(a.columns.is_exact), np.asarray(b.columns.is_exact)
            )

    def test_parallel_build_matches_serial(self, medium_setup):
        graph, matrix, params, _ = medium_setup
        serial = build_sharded_index(graph, params, transition=matrix, n_shards=3)
        parallel = build_sharded_index(
            graph, params, transition=matrix, n_shards=3, n_workers=2
        )
        for a, b in zip(serial.shards, parallel.shards):
            np.testing.assert_array_equal(
                np.asarray(a.columns.lower), np.asarray(b.columns.lower)
            )

    def test_streamed_build_goes_straight_to_layout(self, medium_setup, tmp_path):
        graph, matrix, params, index = medium_setup
        directory = tmp_path / "streamed"
        built = build_sharded_index(
            graph,
            params,
            transition=matrix,
            n_shards=3,
            directory=directory,
            memory_budget=0,
        )
        assert all(shard.backing == "memmap" for shard in built.shards)
        assert (directory / _META_NAME).exists()
        columns = index.columns
        for shard in built.shards:
            np.testing.assert_array_equal(
                np.asarray(shard.columns.lower),
                columns.lower[:, shard.start : shard.stop],
            )

    def test_budget_backing_decision_uses_real_total(self, medium_setup, tmp_path):
        # Regression: the cold build used to decide the backing from the
        # column+hub estimate alone; with states dominating the index, a
        # budget between that estimate and the real total kept an over-budget
        # index in RAM while a warm start of the same layout went memmap.
        graph, matrix, params, index = medium_setup
        sizes = index.storage_bytes()
        assert sizes["total"] > sizes["lower_bounds"] + sizes["hub_matrix"]
        budget = sizes["lower_bounds"] + sizes["hub_matrix"] + 1
        built = build_sharded_index(
            graph,
            params,
            transition=matrix,
            n_shards=3,
            directory=tmp_path / "tight",
            memory_budget=budget,
        )
        assert all(shard.backing == "memmap" for shard in built.shards)
        reloaded = ShardedReverseTopKIndex.load(
            tmp_path / "tight", memory_budget=budget
        )
        assert all(shard.backing == "memmap" for shard in reloaded.shards)
        # A budget the whole index fits in resolves to RAM on both paths.
        roomy = build_sharded_index(
            graph,
            params,
            transition=matrix,
            n_shards=3,
            directory=tmp_path / "roomy",
            memory_budget=sizes["total"] * 10,
        )
        assert all(shard.backing == "ram" for shard in roomy.shards)

    def test_overlay_write_backs_update_size_accounting(
        self, medium_setup, tmp_path
    ):
        # Regression: stored_entries/resident_bytes ignored the memmap
        # shard's write overlay, so a re-persisted layout recorded stale
        # totals after refinement write-backs.
        import numpy as np

        _, _, _, index = medium_setup
        ShardedReverseTopKIndex.from_index(index, 3).persist(tmp_path / "acct")
        loaded = ShardedReverseTopKIndex.load(tmp_path / "acct", memory_budget=0)
        node = 5
        before = loaded.storage_bytes()["bca_state"]
        replaced_entries = index.state(node).stored_entries()
        state = loaded.state(node)
        state.retained = {0: 1.0}
        state.residual = {}
        state.hub_ink = {}
        loaded.set_state(node, state)
        after = loaded.storage_bytes()["bca_state"]
        assert after == before - (replaced_entries - 1) * 16
        shard, _ = loaded.shard_of(node)
        assert shard.resident_bytes() > 0  # overlay + promoted columns count

    def test_progress_fires_per_shard(self, medium_setup):
        graph, matrix, params, _ = medium_setup
        seen = []
        build_sharded_index(
            graph,
            params,
            transition=matrix,
            n_shards=4,
            progress=lambda done, total: seen.append((done, total)),
        )
        assert len(seen) == 4
        assert seen[-1] == (graph.n_nodes, graph.n_nodes)


class TestShardedEngine:
    def test_build_classmethod_round_trips(self, medium_setup):
        graph, matrix, params, index = medium_setup
        with ShardedReverseTopKEngine.build(
            graph, params, transition=matrix, n_shards=4, scan_workers=2
        ) as router:
            reference = ReverseTopKEngine(matrix, index)
            for query in (0, 17, 64, 122):
                a = reference.query(query, 5, update_index=False)
                b = router.query(query, 5, update_index=False)
                np.testing.assert_array_equal(a.nodes, b.nodes)

    def test_scalar_scan_mode_matches_vectorized(self, medium_setup):
        _, matrix, _, index = medium_setup
        router = ShardedReverseTopKEngine(
            matrix, ShardedReverseTopKIndex.from_index(index, 3)
        )
        a = router.query(11, 5, update_index=False)
        b = router.query(11, 5, update_index=False, scan_mode="scalar")
        np.testing.assert_array_equal(a.nodes, b.nodes)
        assert a.statistics.n_candidates == b.statistics.n_candidates

    def test_rebind_preserves_scan_workers(self, medium_setup):
        _, matrix, _, index = medium_setup
        router = ShardedReverseTopKEngine(
            matrix, ShardedReverseTopKIndex.from_index(index, 3), scan_workers=3
        )
        router.rebind(matrix)
        assert router.scan_workers == 3
        router.close()
