"""Tests for Algorithm 3 — the staircase upper bound."""

import numpy as np
import pytest

from repro.core.bounds import is_valid_upper_bound, kth_upper_bound, staircase_levels
from repro.exceptions import InvalidParameterError


class TestStaircaseLevels:
    def test_levels_monotone(self):
        lower = np.array([0.5, 0.4, 0.3, 0.2, 0.1])
        levels = staircase_levels(lower, 5)
        assert levels[0] == 0.0
        assert all(levels[i] <= levels[i + 1] for i in range(4))

    def test_levels_match_hand_computation(self):
        # k=3, lower = [0.5, 0.3, 0.1]: z1 = 1*(0.3-0.1)=0.2, z2 = z1+2*(0.5-0.3)=0.6
        levels = staircase_levels(np.array([0.5, 0.3, 0.1]), 3)
        np.testing.assert_allclose(levels, [0.0, 0.2, 0.6])

    def test_requires_descending_input(self):
        with pytest.raises(InvalidParameterError):
            staircase_levels(np.array([0.1, 0.5]), 2)

    def test_requires_enough_entries(self):
        with pytest.raises(InvalidParameterError):
            staircase_levels(np.array([0.5]), 3)


class TestKthUpperBound:
    def test_zero_residual_returns_kth_lower_bound(self):
        lower = np.array([0.5, 0.4, 0.3])
        assert kth_upper_bound(lower, 0.0, 3) == pytest.approx(0.3)

    def test_partial_fill_case(self):
        # k=3, lower=[0.5,0.3,0.1], residue 0.1 fits between z0=0 and z1=0.2:
        # ub = p̂(2) - (z1 - r)/1 = 0.3 - 0.1 = 0.2... wait that lowers below p̂(2)?
        # Eq 18: ub = p̂(k-j) - (z_j - r)/j with j=1 -> 0.3 - (0.2-0.1)/1 = 0.2.
        value = kth_upper_bound(np.array([0.5, 0.3, 0.1]), 0.1, 3)
        assert value == pytest.approx(0.2)
        assert value >= 0.1  # never below the current k-th lower bound

    def test_flood_case(self):
        # Residue larger than z_{k-1} floods the staircase.
        lower = np.array([0.5, 0.3, 0.1])
        value = kth_upper_bound(lower, 1.0, 3)
        assert value == pytest.approx(0.5 + (1.0 - 0.6) / 3)

    def test_k_equals_one(self):
        assert kth_upper_bound(np.array([0.4]), 0.2, 1) == pytest.approx(0.6)

    def test_never_below_kth_lower_bound(self):
        rng = np.random.default_rng(0)
        for _ in range(200):
            k = int(rng.integers(1, 8))
            lower = np.sort(rng.random(k + 3))[::-1]
            residue = float(rng.random() * 2)
            assert kth_upper_bound(lower, residue, k) >= lower[k - 1] - 1e-12

    def test_monotone_in_residual(self):
        lower = np.array([0.5, 0.4, 0.3, 0.2])
        bounds = [kth_upper_bound(lower, r, 4) for r in (0.0, 0.1, 0.5, 1.0)]
        assert all(bounds[i] <= bounds[i + 1] + 1e-12 for i in range(3))

    def test_pads_short_lower_bound_list(self):
        # Fewer than k known values: zeros pad, bound still valid.
        value = kth_upper_bound(np.array([0.3]), 0.1, 3)
        assert value >= 0.0

    def test_rejects_negative_residual(self):
        with pytest.raises(InvalidParameterError):
            kth_upper_bound(np.array([0.5, 0.2]), -0.1, 2)

    def test_rejects_bad_k(self):
        with pytest.raises(InvalidParameterError):
            kth_upper_bound(np.array([0.5]), 0.1, 0)

    def test_is_valid_upper_bound_helper(self):
        assert is_valid_upper_bound(0.5, 0.4)
        assert not is_valid_upper_bound(0.3, 0.4)


class TestUpperBoundSoundnessAgainstTruth:
    def test_bound_dominates_true_kth_value(self, small_transition, small_exact_matrix):
        """Pouring the residue of a truncated BCA run never undercuts the truth."""
        from repro.rwr import push_proximity_vector

        k = 5
        for node in (0, 4, 17, 33):
            partial = push_proximity_vector(
                small_transition, node, propagation_threshold=1e-2
            )
            lower = np.sort(partial.retained)[::-1][: k + 2]
            bound = kth_upper_bound(lower, partial.residual_mass, k)
            exact_kth = np.sort(small_exact_matrix[:, node])[-k]
            assert bound >= exact_kth - 1e-9


class TestBatchWorkspace:
    """The optional BoundsWorkspace must never change a single bit."""

    def _random_case(self, rng):
        K = int(rng.integers(1, 9))
        m = int(rng.integers(0, 50))
        k = int(rng.integers(1, K + 1))
        lower = np.sort(rng.random((K, m)), axis=0)[::-1]
        masses = rng.random(m) * rng.choice([0.0, 1e-6, 0.1, 2.0])
        return lower, masses, k

    def test_workspace_results_bit_identical(self):
        from repro.core.bounds import BoundsWorkspace, kth_upper_bounds_batch

        rng = np.random.default_rng(7)
        workspace = BoundsWorkspace()
        for _ in range(100):
            lower, masses, k = self._random_case(rng)
            plain = kth_upper_bounds_batch(lower, masses, k)
            pooled = kth_upper_bounds_batch(lower, masses, k, workspace=workspace)
            np.testing.assert_array_equal(plain, pooled)

    def test_workspace_handles_float32_input(self):
        from repro.core.bounds import BoundsWorkspace, kth_upper_bounds_batch

        rng = np.random.default_rng(11)
        workspace = BoundsWorkspace()
        for _ in range(50):
            lower, masses, k = self._random_case(rng)
            lower32 = lower.astype(np.float32)
            plain = kth_upper_bounds_batch(lower32, masses, k)
            pooled = kth_upper_bounds_batch(lower32, masses, k, workspace=workspace)
            np.testing.assert_array_equal(plain, pooled)

    def test_workspace_shrinks_and_grows_across_calls(self):
        from repro.core.bounds import BoundsWorkspace, kth_upper_bounds_batch

        rng = np.random.default_rng(13)
        workspace = BoundsWorkspace()
        for m in (40, 3, 0, 17, 40, 1):
            lower = np.sort(rng.random((5, m)), axis=0)[::-1]
            masses = rng.random(m)
            plain = kth_upper_bounds_batch(lower, masses, 4)
            pooled = kth_upper_bounds_batch(lower, masses, 4, workspace=workspace)
            np.testing.assert_array_equal(plain, pooled)

    def test_output_is_not_a_workspace_buffer(self):
        from repro.core.bounds import BoundsWorkspace, kth_upper_bounds_batch

        workspace = BoundsWorkspace()
        lower = np.array([[0.5, 0.4], [0.3, 0.2]])
        masses = np.array([0.1, 0.0])
        first = kth_upper_bounds_batch(lower, masses, 2, workspace=workspace)
        kept = first.copy()
        kth_upper_bounds_batch(lower[:, ::-1].copy(), masses[::-1].copy(), 2, workspace=workspace)
        np.testing.assert_array_equal(first, kept)
