"""Float32-screened scanning must be bit-identical to the float64 scan.

The screened path prunes and staircase-checks against a float32 mirror of the
lower-bound plane, escalating only borderline nodes (within the conservative
rounding envelope) to the float64 truth.  These tests attack the envelope from
both sides: randomized sweeps, hand-built near-threshold columns placed within
one ULP of the query proximity, and full engine/sharded-engine comparisons
where the statistics — not just the answers — must match.
"""

import numpy as np
import pytest

from repro.core import (
    IndexParams,
    QueryParams,
    ReverseTopKEngine,
    ShardedReverseTopKEngine,
    build_sharded_index,
    columnar_stage_decisions,
)
from repro.core.bounds import (
    FLOAT32_ABSOLUTE_ENVELOPE,
    FLOAT32_RELATIVE_ENVELOPE,
    float32_prune_envelope,
    float32_staircase_envelope,
)
from repro.core.index import ColumnarView
from repro.exceptions import ConfigurationError
from repro.graph import transition_matrix


def _decide_both_ways(proximity, columns, k):
    """Run the f64 reference and the f32-screened pipeline on one view."""
    reference = columnar_stage_decisions(proximity, columns, k)
    lower32 = columns.lower.astype(np.float32)
    screened = columnar_stage_decisions(proximity, columns, k, lower32=lower32)
    return reference, screened


def _assert_same_decisions(reference, screened):
    ref_exact, ref_candidates, ref_hits, ref_pruned = reference
    scr_exact, scr_candidates, scr_hits, scr_pruned = screened
    np.testing.assert_array_equal(ref_exact, scr_exact)
    np.testing.assert_array_equal(ref_candidates, scr_candidates)
    np.testing.assert_array_equal(ref_hits, scr_hits)
    assert ref_pruned == scr_pruned


def _view(lower, masses, is_exact=None):
    lower = np.asarray(lower, dtype=np.float64)
    n = lower.shape[1]
    masses = np.asarray(masses, dtype=np.float64)
    if is_exact is None:
        is_exact = np.zeros(n, dtype=bool)
    return ColumnarView(
        lower=lower,
        residual_mass=masses,
        is_exact=np.asarray(is_exact, dtype=bool),
    )


class TestEnvelopes:
    def test_prune_envelope_dominates_float32_rounding(self):
        rng = np.random.default_rng(7)
        values = rng.uniform(0.0, 1.0, size=10_000)
        values = np.concatenate([values, [0.0, 1e-300, 5e-324, 1.0]])
        roundtrip = values.astype(np.float32).astype(np.float64)
        envelope = float32_prune_envelope(roundtrip)
        assert np.all(np.abs(roundtrip - values) <= envelope)

    def test_staircase_envelope_grows_with_mass(self):
        top = np.array([0.25, 0.25])
        small = float32_staircase_envelope(top, np.array([0.0, 0.0]))
        large = float32_staircase_envelope(top, np.array([1.0, 1.0]))
        assert np.all(large > small)

    def test_constants_are_conservative(self):
        assert FLOAT32_RELATIVE_ENVELOPE == float(np.finfo(np.float32).eps)
        assert FLOAT32_ABSOLUTE_ENVELOPE > 0.0


class TestAdversarialColumns:
    """Hand-built columns pinned within one ULP of the decision boundary."""

    def test_threshold_one_ulp_each_side_of_proximity(self):
        p = 0.123456789012345
        thresholds = np.array(
            [
                np.nextafter(p, np.inf),  # prune: p < threshold
                p,  # survive: p >= threshold (tie)
                np.nextafter(p, -np.inf),  # survive
                p * (1.0 + np.finfo(np.float32).eps / 2),
                p * (1.0 - np.finfo(np.float32).eps / 2),
            ]
        )
        n = thresholds.size
        lower = np.vstack([np.full(n, 0.9), thresholds])
        columns = _view(lower, np.zeros(n))
        proximity = np.full(n, p)
        reference, screened = _decide_both_ways(proximity, columns, 2)
        _assert_same_decisions(reference, screened)
        # Sanity: the reference really does split on these columns — the
        # +1 ULP and +eps32/2 thresholds prune, the other three survive.
        assert reference[3] == 2

    def test_subnormal_and_zero_thresholds(self):
        thresholds = np.array([0.0, 5e-324, 1e-300, 1e-45, 1e-38])
        n = thresholds.size
        lower = np.vstack([np.full(n, 1e-200), thresholds])
        lower = np.maximum(lower, thresholds)  # keep rows sorted
        columns = _view(np.sort(lower, axis=0)[::-1], np.zeros(n))
        for p in (0.0, 5e-324, 1e-300, 1e-40):
            proximity = np.full(n, p)
            reference, screened = _decide_both_ways(proximity, columns, 2)
            _assert_same_decisions(reference, screened)

    def test_staircase_tie_at_the_upper_bound(self):
        # One non-exact column whose staircase upper bound we hit exactly,
        # one we miss by one ULP in each direction.
        lower = np.array([[0.5, 0.5, 0.5], [0.3, 0.3, 0.3]])
        masses = np.array([0.1, 0.1, 0.1])
        columns = _view(lower, masses)
        from repro.core.bounds import kth_upper_bounds_batch

        upper = kth_upper_bounds_batch(lower, masses, 2)
        proximity = np.array(
            [upper[0], np.nextafter(upper[1], np.inf), np.nextafter(upper[2], -np.inf)]
        )
        reference, screened = _decide_both_ways(proximity, columns, 2)
        _assert_same_decisions(reference, screened)
        # The tie and the +1 ULP columns are hits; the -1 ULP column is not.
        hits = np.zeros(3, dtype=bool)
        hits[reference[1][reference[2]]] = True
        assert hits.tolist() == [True, True, False]

    def test_exact_columns_shortcut_identically(self):
        lower = np.array([[0.4, 0.4, 0.4], [0.2, 0.2, 0.2]])
        is_exact = np.array([True, False, True])
        columns = _view(lower, np.array([0.0, 0.3, 0.0]), is_exact)
        proximity = np.array([0.2, 0.2, np.nextafter(0.2, -np.inf)])
        reference, screened = _decide_both_ways(proximity, columns, 2)
        _assert_same_decisions(reference, screened)
        np.testing.assert_array_equal(reference[0], [0])

    def test_randomized_sweep_is_bit_identical(self):
        rng = np.random.default_rng(42)
        for _ in range(200):
            n = int(rng.integers(1, 40))
            k = int(rng.integers(1, 6))
            lower = np.sort(rng.uniform(0.0, 0.5, size=(k, n)), axis=0)[::-1]
            # Sprinkle exact ties with the query proximity to stress the
            # boundary comparisons.
            proximity = rng.uniform(0.0, 0.6, size=n)
            tie = rng.random(n) < 0.2
            lower[k - 1, tie] = proximity[tie]
            masses = rng.uniform(0.0, 0.4, size=n) * (rng.random(n) < 0.7)
            is_exact = rng.random(n) < 0.3
            columns = _view(lower, masses, is_exact)
            reference, screened = _decide_both_ways(proximity, columns, k)
            _assert_same_decisions(reference, screened)


def _counters(statistics):
    """Statistics minus the wall-clock fields (those legitimately differ)."""
    return (
        statistics.n_results,
        statistics.n_candidates,
        statistics.n_hits,
        statistics.n_exact_shortcut,
        statistics.n_pruned_immediately,
        statistics.n_refinement_iterations,
        statistics.n_refined_nodes,
        statistics.pmpn_iterations,
        statistics.n_exact_fallbacks,
    )


def _assert_identical_answers(engine_a, engine_b, n, k_values):
    for node in range(n):
        for k in k_values:
            res_a = engine_a.query(node, k=k)
            res_b = engine_b.query(node, k=k)
            np.testing.assert_array_equal(res_a.nodes, res_b.nodes)
            assert _counters(res_a.statistics) == _counters(res_b.statistics)


class TestEngineEquivalence:
    @pytest.fixture(scope="class")
    def matrices(self, small_web_graph):
        return small_web_graph, transition_matrix(small_web_graph)

    def test_scan_precision_is_validated(self, matrices):
        graph, matrix = matrices
        with pytest.raises((ConfigurationError, ValueError)):
            ReverseTopKEngine.build(graph, transition=matrix, scan_precision="half")

    def test_float32_engine_matches_float64_engine(self, matrices):
        graph, matrix = matrices
        params = IndexParams(capacity=12, hub_budget=4)
        baseline = ReverseTopKEngine.build(graph, params, transition=matrix)
        screened = ReverseTopKEngine.build(
            graph, params, transition=matrix, scan_precision="float32"
        )
        assert screened.scan_precision == "float32"
        _assert_identical_answers(baseline, screened, graph.n_nodes, (1, 3, 8))

    def test_float32_engine_matches_after_refinement_writebacks(self, matrices):
        graph, matrix = matrices
        params = IndexParams(capacity=6, hub_budget=2)
        query_params = QueryParams(k=5, update_index=True)
        baseline = ReverseTopKEngine.build(graph, params, transition=matrix)
        screened = ReverseTopKEngine.build(
            graph, params, transition=matrix, scan_precision="float32"
        )
        for node in range(0, graph.n_nodes, 7):
            res_a = baseline.query(node, params=query_params)
            res_b = screened.query(node, params=query_params)
            np.testing.assert_array_equal(res_a.nodes, res_b.nodes)
            assert _counters(res_a.statistics) == _counters(res_b.statistics)
        # The float32 mirror must track every write-back bit-for-bit.
        np.testing.assert_array_equal(
            screened.index.lower_bounds_f32(),
            screened.index.columns.lower.astype(np.float32),
        )

    def test_pickle_preserves_scan_precision(self, matrices):
        import pickle

        graph, matrix = matrices
        params = IndexParams(capacity=6, hub_budget=2)
        screened = ReverseTopKEngine.build(
            graph, params, transition=matrix, scan_precision="float32"
        )
        clone = pickle.loads(pickle.dumps(screened))
        assert clone.scan_precision == "float32"
        res_a = screened.query(3, k=4)
        res_b = clone.query(3, k=4)
        np.testing.assert_array_equal(res_a.nodes, res_b.nodes)


class TestShardedEquivalence:
    def test_memmap_float32_layout_matches_monolithic(self, small_web_graph, tmp_path):
        graph = small_web_graph
        matrix = transition_matrix(graph)
        params = IndexParams(capacity=8, hub_budget=3)
        baseline = ReverseTopKEngine.build(graph, params, transition=matrix)
        sharded_index = build_sharded_index(
            graph,
            params,
            transition=matrix,
            n_shards=3,
            directory=tmp_path,
            memory_budget=0,
        )
        screened = ShardedReverseTopKEngine(
            matrix, sharded_index, scan_precision="float32"
        )
        # The shards must actually be serving the float32 plane off disk.
        assert len(list(tmp_path.glob("*.lower32.npy"))) == len(sharded_index.shards)
        for shard in sharded_index.shards:
            plane = shard.lower32()
            assert plane.dtype == np.float32
            assert isinstance(plane, np.memmap)
        _assert_identical_answers(baseline, screened, graph.n_nodes, (1, 4))

    def test_update_mode_invalidates_cached_screens(self, small_web_graph, tmp_path):
        # Write-backs promote shard columns; the cached float32 mirror and
        # the per-k screening rows must both refresh, or later queries would
        # prune against stale thresholds.
        graph = small_web_graph
        matrix = transition_matrix(graph)
        params = IndexParams(capacity=6, hub_budget=2)
        query_params = QueryParams(k=4, update_index=True)
        baseline = ReverseTopKEngine.build(graph, params, transition=matrix)
        sharded_index = build_sharded_index(
            graph,
            params,
            transition=matrix,
            n_shards=3,
            directory=tmp_path,
            memory_budget=0,
        )
        screened = ShardedReverseTopKEngine(
            matrix, sharded_index, scan_precision="float32"
        )
        for node in range(0, graph.n_nodes, 5):
            res_a = baseline.query(node, params=query_params)
            res_b = screened.query(node, params=query_params)
            np.testing.assert_array_equal(res_a.nodes, res_b.nodes)
            assert _counters(res_a.statistics) == _counters(res_b.statistics)
        for shard in sharded_index.shards:
            np.testing.assert_array_equal(
                np.asarray(shard.lower32()),
                np.asarray(shard.columns.lower, dtype=np.float32),
            )
