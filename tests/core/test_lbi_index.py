"""Tests for Algorithm 1 (lower-bound indexing) and the index data structure."""

import copy

import numpy as np
import pytest
import scipy.sparse as sp

from repro.core import IndexParams, build_index
from repro.core.hubs import HubSet, select_hubs_by_degree
from repro.core.index import NodeState, ReverseTopKIndex
from repro.core.lbi import bca_iteration, initial_node_state, refine_node_state
from repro.graph import transition_matrix
from repro.utils.sparsetools import top_k_descending


class TestNodeState:
    def test_residual_mass(self):
        state = NodeState(residual={0: 0.4, 3: 0.1})
        assert state.residual_mass == pytest.approx(0.5)

    def test_is_exact(self):
        assert NodeState(residual={}).is_exact
        assert not NodeState(residual={1: 0.2}).is_exact
        assert NodeState(is_hub=True).is_exact

    def test_kth_lower_bound_padding(self):
        state = NodeState(lower_bounds=np.array([0.5, 0.2]))
        assert state.kth_lower_bound(1) == 0.5
        assert state.kth_lower_bound(2) == 0.2
        assert state.kth_lower_bound(5) == 0.0

    def test_kth_lower_bound_rejects_nonpositive_k(self):
        with pytest.raises(ValueError):
            NodeState().kth_lower_bound(0)

    def test_copy_is_deep(self):
        state = NodeState(residual={0: 1.0}, lower_bounds=np.array([0.3]))
        clone = state.copy()
        clone.residual[0] = 0.5
        clone.lower_bounds[0] = 0.0
        assert state.residual[0] == 1.0
        assert state.lower_bounds[0] == 0.3

    def test_stored_entries(self):
        state = NodeState(residual={0: 1.0}, retained={1: 0.2, 2: 0.1}, hub_ink={3: 0.3})
        assert state.stored_entries() == 4


class TestBCAIteration:
    def test_mass_conservation_across_iterations(self, small_transition, small_params):
        hub_mask = np.zeros(small_transition.shape[0], dtype=bool)
        state = initial_node_state(0, False)
        matrix = sp.csc_matrix(small_transition)
        for _ in range(6):
            before = (
                sum(state.retained.values())
                + sum(state.hub_ink.values())
                + state.residual_mass
            )
            progressed = bca_iteration(state, matrix, hub_mask, small_params)
            after = (
                sum(state.retained.values())
                + sum(state.hub_ink.values())
                + state.residual_mass
            )
            assert after == pytest.approx(before, abs=1e-12)
            if not progressed:
                break

    def test_residual_shrinks(self, small_transition, small_params):
        hub_mask = np.zeros(small_transition.shape[0], dtype=bool)
        state = initial_node_state(0, False)
        matrix = sp.csc_matrix(small_transition)
        masses = [state.residual_mass]
        for _ in range(5):
            bca_iteration(state, matrix, hub_mask, small_params)
            masses.append(state.residual_mass)
        assert masses[-1] < masses[0]

    def test_hub_ink_collected(self, small_web_graph, small_transition, small_params):
        hubs = select_hubs_by_degree(small_web_graph, 3)
        hub_mask = hubs.mask(small_web_graph.n_nodes)
        start = next(v for v in range(small_web_graph.n_nodes) if not hub_mask[v])
        state = initial_node_state(start, False)
        matrix = sp.csc_matrix(small_transition)
        for _ in range(4):
            bca_iteration(state, matrix, hub_mask, small_params)
        # All hub_ink keys must be hubs and no residue may sit at a hub.
        assert all(hub in hubs for hub in state.hub_ink)
        assert all(not hub_mask[node] for node in state.residual)

    def test_returns_false_without_active_nodes(self, small_transition, small_params):
        hub_mask = np.zeros(small_transition.shape[0], dtype=bool)
        state = NodeState(residual={0: small_params.propagation_threshold / 10})
        assert not bca_iteration(state, sp.csc_matrix(small_transition), hub_mask, small_params)


class TestBuildIndex:
    def test_index_shape(self, small_index, small_web_graph, small_params):
        assert small_index.n_nodes == small_web_graph.n_nodes
        assert small_index.capacity == small_params.capacity
        assert small_index.hub_matrix.shape == (
            small_web_graph.n_nodes,
            len(small_index.hubs),
        )

    def test_lower_bounds_are_descending(self, small_index):
        for _, state in small_index.states():
            bounds = state.lower_bounds
            assert np.all(np.diff(bounds) <= 1e-12)

    def test_lower_bounds_never_exceed_exact(self, small_index, small_exact_matrix):
        for node, state in small_index.states():
            exact_sorted = np.sort(small_exact_matrix[:, node])[::-1]
            k = min(state.lower_bounds.size, exact_sorted.size)
            assert np.all(state.lower_bounds[:k] <= exact_sorted[:k] + 1e-9)

    def test_hub_states_are_exact(self, small_index, small_exact_matrix):
        for hub in small_index.hubs:
            state = small_index.state(hub)
            assert state.is_hub
            assert state.is_exact
            exact_top = top_k_descending(small_exact_matrix[:, hub], small_index.capacity)
            np.testing.assert_allclose(state.lower_bounds, exact_top, atol=1e-7)

    def test_non_hub_residual_below_delta(self, small_index, small_params):
        for node, state in small_index.states():
            if not state.is_hub:
                assert state.residual_mass <= small_params.residue_threshold + 1e-9

    def test_approximate_vector_is_lower_bound(self, small_index, small_exact_matrix):
        for node in (0, 5, 20, 41):
            approx = small_index.approximate_vector(node)
            assert np.all(approx <= small_exact_matrix[:, node] + 1e-9)

    def test_kth_lower_bounds_row(self, small_index):
        row = small_index.kth_lower_bounds(3)
        assert row.shape == (small_index.n_nodes,)
        assert np.all(row >= 0)

    def test_kth_lower_bounds_validates_against_capacity(self, small_index):
        # Regression: the old check used ``max(n_nodes, k)`` as the node bound,
        # which silently accepted any k above n_nodes; k must be validated
        # against the index capacity K (the matrix row count) and nothing else.
        from repro.exceptions import InvalidParameterError

        with pytest.raises(InvalidParameterError):
            small_index.kth_lower_bounds(small_index.capacity + 1)
        with pytest.raises(InvalidParameterError):
            small_index.kth_lower_bounds(0)
        row = small_index.kth_lower_bounds(small_index.capacity)
        assert row.shape == (small_index.n_nodes,)

    def test_kth_lower_bounds_beyond_node_count(self):
        # k may exceed the node count as long as it fits the capacity: the
        # matrix stores K slots per node regardless of the graph size.
        params = IndexParams(capacity=5, hub_budget=0)
        states = [NodeState(lower_bounds=np.array([0.4, 0.2])) for _ in range(3)]
        index = ReverseTopKIndex(
            params, HubSet(()), sp.csc_matrix((3, 0)), np.zeros(0), states
        )
        np.testing.assert_array_equal(index.kth_lower_bounds(2), np.full(3, 0.2))
        np.testing.assert_array_equal(index.kth_lower_bounds(4), np.zeros(3))

    def test_lower_bound_matrix_shape(self, small_index):
        matrix = small_index.lower_bound_matrix()
        assert matrix.shape == (small_index.capacity, small_index.n_nodes)

    def test_zero_hub_budget(self, small_web_graph, small_transition):
        params = IndexParams(capacity=10, hub_budget=0)
        index = build_index(small_web_graph, params, transition=small_transition)
        assert len(index.hubs) == 0
        assert index.hub_matrix.shape[1] == 0

    def test_build_from_transition_matrix_only(self, small_transition):
        params = IndexParams(capacity=10, hub_budget=3)
        index = build_index(small_transition, params)
        assert index.n_nodes == small_transition.shape[0]
        assert len(index.hubs) >= 3

    def test_rounding_reduces_hub_matrix_size(self, small_trust_graph):
        # The trust graph is well connected, so hub proximity vectors have a
        # long tail of small entries that rounding removes.
        matrix = transition_matrix(small_trust_graph)
        exact = build_index(
            small_trust_graph,
            IndexParams(capacity=10, hub_budget=4, rounding_threshold=0.0),
            transition=matrix,
        )
        rounded = build_index(
            small_trust_graph,
            IndexParams(capacity=10, hub_budget=4, rounding_threshold=1e-3),
            transition=matrix,
        )
        assert rounded.hub_matrix.nnz < exact.hub_matrix.nnz
        assert rounded.total_bytes() < exact.total_bytes()
        assert np.all(rounded.hub_deficit >= 0.0)
        assert np.any(rounded.hub_deficit > 0.0)

    def test_hub_deficit_zero_without_rounding(self, small_web_graph, small_transition):
        index = build_index(
            small_web_graph,
            IndexParams(capacity=10, hub_budget=4, rounding_threshold=0.0),
            transition=small_transition,
        )
        np.testing.assert_allclose(index.hub_deficit, 0.0, atol=1e-12)

    def test_build_seconds_recorded(self, small_index):
        assert small_index.build_seconds > 0.0

    def test_storage_accounting_keys(self, small_index):
        storage = small_index.storage_bytes()
        assert set(storage) == {"lower_bounds", "bca_state", "hub_matrix", "total"}
        assert storage["total"] == sum(v for k, v in storage.items() if k != "total")


class TestRefinement:
    def test_refinement_tightens_lower_bounds(self, small_web_graph, small_transition, small_params):
        index = build_index(small_web_graph, small_params, transition=small_transition)
        hub_mask = index.hubs.mask(small_web_graph.n_nodes)
        matrix = sp.csc_matrix(small_transition)
        refined_any = False
        for node, state in index.states():
            if state.is_exact:
                continue
            before = state.lower_bounds.copy()
            progressed = refine_node_state(state, index, matrix, hub_mask)
            if progressed:
                refined_any = True
                assert np.all(state.lower_bounds >= before - 1e-12)
        assert refined_any

    def test_refinement_to_exhaustion_matches_exact(
        self, small_web_graph, small_transition, small_exact_matrix
    ):
        params = IndexParams(capacity=10, hub_budget=4, rounding_threshold=0.0)
        index = build_index(small_web_graph, params, transition=small_transition)
        hub_mask = index.hubs.mask(small_web_graph.n_nodes)
        matrix = sp.csc_matrix(small_transition)
        node = next(v for v, s in index.states() if not s.is_hub)
        state = index.state(node)
        for _ in range(10_000):
            if not refine_node_state(state, index, matrix, hub_mask):
                break
        exact_top = top_k_descending(small_exact_matrix[:, node], params.capacity)
        np.testing.assert_allclose(state.lower_bounds, exact_top, atol=1e-6)


class TestIndexPersistence:
    def test_save_load_round_trip(self, small_index, tmp_path):
        path = tmp_path / "index.npz"
        small_index.save(path)
        loaded = ReverseTopKIndex.load(path)
        assert loaded.n_nodes == small_index.n_nodes
        assert loaded.capacity == small_index.capacity
        assert loaded.hubs.nodes == small_index.hubs.nodes
        for node, state in small_index.states():
            restored = loaded.state(node)
            assert restored.residual == pytest.approx(state.residual)
            assert restored.retained == pytest.approx(state.retained)
            assert restored.hub_ink == pytest.approx(state.hub_ink)
            np.testing.assert_allclose(restored.lower_bounds, state.lower_bounds)
            assert restored.is_hub == state.is_hub

    def test_save_load_preserves_columnar_views(self, small_index, tmp_path):
        path = tmp_path / "index.npz"
        small_index.save(path)
        loaded = ReverseTopKIndex.load(path)
        np.testing.assert_allclose(
            loaded.columns.lower, small_index.columns.lower
        )
        np.testing.assert_allclose(
            loaded.columns.residual_mass, small_index.columns.residual_mass
        )
        np.testing.assert_array_equal(
            loaded.columns.is_exact, small_index.columns.is_exact
        )

    def test_loaded_index_answers_queries(self, small_index, small_transition, tmp_path):
        from repro.core import ReverseTopKEngine

        path = tmp_path / "index.npz"
        small_index.save(path)
        loaded = ReverseTopKIndex.load(path)
        original = ReverseTopKEngine(small_transition, copy.deepcopy(small_index)).query(3, 5)
        restored = ReverseTopKEngine(small_transition, loaded).query(3, 5)
        assert set(original.nodes.tolist()) == set(restored.nodes.tolist())

    def test_load_missing_file_raises(self, tmp_path):
        from repro.exceptions import SerializationError

        with pytest.raises(SerializationError):
            ReverseTopKIndex.load(tmp_path / "nope.npz")


class TestColumnarViews:
    def test_columns_match_per_node_state(self, small_index):
        columns = small_index.columns
        assert columns.lower.shape == (small_index.capacity, small_index.n_nodes)
        for node, state in small_index.states():
            for k in (1, 3, small_index.capacity):
                assert columns.lower[k - 1, node] == state.kth_lower_bound(k)
            assert columns.residual_mass[node] == pytest.approx(
                small_index.effective_residual_mass(node)
            )
            assert columns.is_exact[node] == state.is_exact

    def test_set_state_refreshes_columns(self, small_index):
        index = copy.deepcopy(small_index)
        node = next(v for v, s in index.states() if not s.is_exact)
        replacement = NodeState(
            lower_bounds=np.full(index.capacity, 0.123), residual={}, is_hub=False
        )
        index.set_state(node, replacement)
        assert index.columns.lower[0, node] == pytest.approx(0.123)
        assert index.columns.residual_mass[node] == 0.0
        assert bool(index.columns.is_exact[node])

    def test_sync_state_after_in_place_mutation(self, small_index, small_transition):
        index = copy.deepcopy(small_index)
        hub_mask = index.hubs.mask(index.n_nodes)
        matrix = sp.csc_matrix(small_transition)
        node = next(v for v, s in index.states() if not s.is_exact)
        state = index.state(node)
        before = index.columns.lower[:, node].copy()
        assert refine_node_state(state, index, matrix, hub_mask)
        # Without a sync the columns are allowed to lag ...
        index.sync_state(node)
        # ... after the sync they must reflect the refined bounds exactly.
        np.testing.assert_array_equal(
            index.columns.lower[:, node], state.lower_bounds[: index.capacity]
        )
        assert np.all(index.columns.lower[:, node] >= before - 1e-12)

    def test_refine_node_state_syncs_when_node_given(self, small_index, small_transition):
        index = copy.deepcopy(small_index)
        hub_mask = index.hubs.mask(index.n_nodes)
        matrix = sp.csc_matrix(small_transition)
        node = next(v for v, s in index.states() if not s.is_exact)
        state = index.state(node)
        assert refine_node_state(state, index, matrix, hub_mask, node=node)
        np.testing.assert_array_equal(
            index.columns.lower[:, node], state.lower_bounds[: index.capacity]
        )
        assert index.columns.residual_mass[node] == pytest.approx(
            index.effective_residual_mass(node)
        )


class TestReplaceContentsValidation:
    def test_wrong_row_count_hub_matrix_rejected(self, small_web_graph):
        import pytest
        import scipy.sparse as sp

        from repro.core import IndexParams, build_index
        from repro.graph import transition_matrix

        matrix = transition_matrix(small_web_graph)
        index = build_index(
            small_web_graph,
            IndexParams(capacity=5, hub_budget=2).for_graph(small_web_graph.n_nodes),
            transition=matrix,
        )
        n_hubs = len(index.hubs)
        truncated = sp.csc_matrix((index.n_nodes - 1, n_hubs))
        with pytest.raises(ValueError, match="rows"):
            index.replace_contents(hub_matrix=truncated)
