"""Tests for the unified propagation-kernel layer and the build report."""

import copy
from dataclasses import replace

import numpy as np
import pytest
import scipy.sparse as sp

from repro.core import (
    IndexParams,
    PropagationKernel,
    ReverseTopKEngine,
    build_index,
    build_index_parallel,
    rebuild_node_state,
    refine_node_state,
)
from repro.core.index import ReverseTopKIndex
from repro.core.lbi import _compute_hub_matrix
from repro.core.propagation import (
    _HubExpansion,
    initial_node_state,
    materialize_lower_bounds,
    run_node_bca,
)


def _states_bit_identical(a, b):
    assert a.residual == b.residual
    assert a.retained == b.retained
    assert a.hub_ink == b.hub_ink
    assert a.iterations == b.iterations
    assert a.is_hub == b.is_hub
    np.testing.assert_array_equal(a.lower_bounds, b.lower_bounds)


@pytest.fixture(scope="module")
def kernel_inputs(small_web_graph, small_transition, small_params):
    from repro.core.lbi import default_hub_selection

    params = small_params.for_graph(small_web_graph.n_nodes)
    hubs = default_hub_selection(small_web_graph, params)
    hub_matrix, _, _ = _compute_hub_matrix(small_transition, hubs, params)
    hub_mask = hubs.mask(small_web_graph.n_nodes)
    return sp.csc_matrix(small_transition), hub_mask, params, hubs, hub_matrix


class TestKernelBackends:
    def test_scalar_backend_matches_seed_loop(self, kernel_inputs):
        # The scalar backend IS the seed implementation: states produced by
        # kernel.run must be bit-identical to driving the per-node primitives
        # (initial state -> run_node_bca -> materialize) by hand.
        matrix, hub_mask, params, hubs, hub_matrix = kernel_inputs
        kernel = PropagationKernel(
            matrix, hub_mask, params, hubs=hubs, hub_matrix=hub_matrix,
            backend="scalar",
        )
        sources = [node for node in range(matrix.shape[0]) if not hub_mask[node]]
        states = kernel.run(sources)
        expansion = _HubExpansion(matrix.shape[0], hubs, hub_matrix)
        for source, state in zip(sources, states):
            reference = initial_node_state(source, False)
            run_node_bca(reference, matrix, hub_mask, params)
            materialize_lower_bounds(reference, expansion, params.capacity)
            _states_bit_identical(state, reference)

    def test_vectorized_block_composition_invariance(self, kernel_inputs):
        # A source's trajectory must not depend on which other sources share
        # its block: tiny blocks, huge blocks and single-source runs all
        # produce bit-identical states.
        matrix, hub_mask, params, hubs, hub_matrix = kernel_inputs
        sources = [node for node in range(matrix.shape[0]) if not hub_mask[node]]

        def build_with(block_size):
            kernel = PropagationKernel(
                matrix, hub_mask, replace(params, block_size=block_size),
                hubs=hubs, hub_matrix=hub_matrix,
            )
            return kernel.run(sources)

        wide = build_with(512)
        narrow = build_with(2)
        for a, b in zip(wide, narrow):
            _states_bit_identical(a, b)
        solo_kernel = PropagationKernel(
            matrix, hub_mask, params, hubs=hubs, hub_matrix=hub_matrix
        )
        for source, state in zip(sources[:5], wide[:5]):
            _states_bit_identical(state, solo_kernel.run([source])[0])

    def test_vectorized_close_to_scalar(self, kernel_inputs):
        matrix, hub_mask, params, hubs, hub_matrix = kernel_inputs
        sources = [node for node in range(matrix.shape[0]) if not hub_mask[node]]
        expansion = _HubExpansion(matrix.shape[0], hubs, hub_matrix)
        vectorized = PropagationKernel(
            matrix, hub_mask, params, hubs=hubs, hub_matrix=hub_matrix
        ).run(sources)
        scalar = PropagationKernel(
            matrix, hub_mask, params, hubs=hubs, hub_matrix=hub_matrix,
            backend="scalar",
        ).run(sources)
        for vec_state, sca_state in zip(vectorized, scalar):
            np.testing.assert_allclose(
                expansion.expand(vec_state), expansion.expand(sca_state),
                rtol=0, atol=1e-12,
            )
            np.testing.assert_allclose(
                vec_state.lower_bounds, sca_state.lower_bounds, rtol=0, atol=1e-12
            )
            assert vec_state.iterations == sca_state.iterations

    def test_rejects_hub_sources(self, kernel_inputs):
        matrix, hub_mask, params, hubs, hub_matrix = kernel_inputs
        kernel = PropagationKernel(
            matrix, hub_mask, params, hubs=hubs, hub_matrix=hub_matrix
        )
        hub = int(np.flatnonzero(hub_mask)[0])
        with pytest.raises(ValueError, match="hub"):
            kernel.run([hub])

    def test_rejects_unknown_backend(self, kernel_inputs):
        matrix, hub_mask, params, hubs, hub_matrix = kernel_inputs
        with pytest.raises(ValueError, match="backend"):
            PropagationKernel(matrix, hub_mask, params, backend="gpu")
        with pytest.raises(ValueError, match="backend"):
            IndexParams(capacity=5, backend="gpu")

    def test_step_equivalent_across_backends(self, kernel_inputs):
        # One vectorized step from the same state content moves the same ink
        # as one scalar step (within accumulation-order tolerance).
        matrix, hub_mask, params, hubs, hub_matrix = kernel_inputs
        source = int(np.flatnonzero(~hub_mask)[0])
        vec_state = initial_node_state(source, False)
        sca_state = initial_node_state(source, False)
        vec_kernel = PropagationKernel(
            matrix, hub_mask, params, hubs=hubs, hub_matrix=hub_matrix
        )
        sca_kernel = PropagationKernel(
            matrix, hub_mask, params, hubs=hubs, hub_matrix=hub_matrix,
            backend="scalar",
        )
        for _ in range(4):
            progressed_vec = vec_kernel.step(vec_state)
            progressed_sca = sca_kernel.step(sca_state)
            assert progressed_vec == progressed_sca
            if not progressed_vec:
                break
            assert vec_state.residual == pytest.approx(sca_state.residual, abs=1e-12)
            assert vec_state.retained == pytest.approx(sca_state.retained, abs=1e-12)
            assert vec_state.hub_ink == pytest.approx(sca_state.hub_ink, abs=1e-12)

    def test_step_honours_propagation_threshold_override(self, kernel_inputs):
        matrix, hub_mask, params, hubs, hub_matrix = kernel_inputs
        source = int(np.flatnonzero(~hub_mask)[0])
        state = initial_node_state(source, False)
        state.residual = {source: params.propagation_threshold / 4}
        kernel = PropagationKernel(
            matrix, hub_mask, params, hubs=hubs, hub_matrix=hub_matrix
        )
        assert not kernel.step(state)
        assert kernel.step(
            state, propagation_threshold=params.propagation_threshold / 8
        )

    def test_materialize_requires_hub_info(self, kernel_inputs):
        matrix, hub_mask, params, _, _ = kernel_inputs
        kernel = PropagationKernel(matrix, hub_mask, params)
        with pytest.raises(ValueError, match="materialize"):
            kernel.materialize(initial_node_state(0, False))


class TestBuildBackends:
    def test_backend_override_recorded(self, small_web_graph, small_transition, small_params):
        index = build_index(
            small_web_graph, small_params, transition=small_transition,
            backend="scalar",
        )
        assert index.params.backend == "scalar"
        assert index.build_report.backend == "scalar"

    def test_build_backends_agree_on_queries(
        self, small_web_graph, small_transition, small_params
    ):
        vec = build_index(small_web_graph, small_params, transition=small_transition)
        sca = build_index(
            small_web_graph, small_params, transition=small_transition,
            backend="scalar",
        )
        vec_engine = ReverseTopKEngine(small_transition, vec)
        sca_engine = ReverseTopKEngine(small_transition, sca)
        for query in (0, 7, 23, 59):
            a = vec_engine.query(query, 5, update_index=False)
            b = sca_engine.query(query, 5, update_index=False)
            np.testing.assert_array_equal(a.nodes, b.nodes)

    def test_rebuild_node_state_matches_build(
        self, small_web_graph, small_transition, small_params
    ):
        for backend in ("vectorized", "scalar"):
            index = build_index(
                small_web_graph, small_params, transition=small_transition,
                backend=backend,
            )
            hub_mask = index.hubs.mask(small_web_graph.n_nodes)
            expansion = _HubExpansion(
                small_web_graph.n_nodes, index.hubs, index.hub_matrix
            )
            matrix = sp.csc_matrix(small_transition)
            for node in np.flatnonzero(~hub_mask)[:6]:
                rebuilt = rebuild_node_state(
                    int(node), matrix, hub_mask, index.params, expansion
                )
                _states_bit_identical(rebuilt, index.state(int(node)))

    def test_refine_uses_index_backend(self, small_web_graph, small_transition, small_params):
        # Whichever backend built the index, refinement routes through the
        # kernel and keeps tightening bounds until the state is exact.
        for backend in ("vectorized", "scalar"):
            index = build_index(
                small_web_graph, small_params, transition=small_transition,
                backend=backend,
            )
            hub_mask = index.hubs.mask(small_web_graph.n_nodes)
            matrix = sp.csc_matrix(small_transition)
            node = next(v for v, s in index.states() if not s.is_exact)
            state = index.state(node)
            before = state.lower_bounds.copy()
            for _ in range(10_000):
                if not refine_node_state(state, index, matrix, hub_mask, node=node):
                    break
            assert state.is_exact
            assert np.all(state.lower_bounds >= before - 1e-12)

    def test_params_backend_round_trips_through_save(self, small_web_graph, small_transition, tmp_path):
        params = IndexParams(capacity=10, hub_budget=3, backend="scalar", block_size=7)
        index = build_index(small_web_graph, params, transition=small_transition)
        path = tmp_path / "index.npz"
        index.save(path)
        loaded = ReverseTopKIndex.load(path)
        assert loaded.params.backend == "scalar"
        assert loaded.params.block_size == 7
        assert loaded.build_report is None


class TestBuildProgressAndReport:
    def test_progress_called_once_per_target_node(
        self, small_web_graph, small_transition, small_params
    ):
        calls = []
        build_index(
            small_web_graph,
            small_params,
            transition=small_transition,
            progress=lambda done, total: calls.append((done, total)),
        )
        n = small_web_graph.n_nodes
        assert len(calls) == n
        assert [done for done, _ in calls] == list(range(1, n + 1))
        assert all(total == n for _, total in calls)

    def test_progress_with_node_subset(self, small_web_graph, small_transition, small_params):
        calls = []
        targets = [3, 9, 27, 41]
        build_index(
            small_web_graph,
            small_params,
            transition=small_transition,
            nodes=targets,
            progress=lambda done, total: calls.append((done, total)),
        )
        assert len(calls) == len(targets)
        assert calls[-1] == (len(targets), len(targets))

    @pytest.mark.parametrize("backend", ["vectorized", "scalar"])
    def test_report_phases_sum_to_build_seconds(
        self, small_web_graph, small_transition, small_params, backend
    ):
        index = build_index(
            small_web_graph, small_params, transition=small_transition,
            backend=backend,
        )
        report = index.build_report
        assert set(report.stage_seconds) == {"hub_matrix", "bca", "materialize"}
        assert all(seconds >= 0.0 for seconds in report.stage_seconds.values())
        assert report.build_seconds == pytest.approx(
            sum(report.stage_seconds.values()), abs=0.0
        )
        assert index.build_seconds == report.build_seconds
        assert report.n_nodes == small_web_graph.n_nodes
        assert report.n_targets == small_web_graph.n_nodes
        as_dict = report.as_dict()
        assert as_dict["backend"] == backend
        assert as_dict["build_seconds"] == report.build_seconds

    def test_report_survives_deepcopy_not_reload(self, small_index):
        clone = copy.deepcopy(small_index)
        assert clone.build_report is not None
        assert clone.build_report.build_seconds == small_index.build_report.build_seconds


class TestParallelBuild:
    def test_parallel_build_bit_identical_to_serial(
        self, small_web_graph, small_transition, small_params
    ):
        serial = build_index(small_web_graph, small_params, transition=small_transition)
        parallel = build_index_parallel(
            small_web_graph, small_params, transition=small_transition, n_workers=2
        )
        assert parallel.hubs.nodes == serial.hubs.nodes
        np.testing.assert_array_equal(
            parallel.hub_matrix.toarray(), serial.hub_matrix.toarray()
        )
        for (node, a), (_, b) in zip(parallel.states(), serial.states()):
            _states_bit_identical(a, b)
        np.testing.assert_array_equal(
            parallel.columns.lower, serial.columns.lower
        )

    def test_parallel_progress_reports_shards(self, small_web_graph, small_transition, small_params):
        calls = []
        build_index_parallel(
            small_web_graph,
            small_params,
            transition=small_transition,
            n_workers=2,
            progress=lambda done, total: calls.append((done, total)),
        )
        assert calls
        done, total = calls[-1]
        assert done == total

    def test_single_worker_falls_back_to_serial(
        self, small_web_graph, small_transition, small_params
    ):
        index = build_index_parallel(
            small_web_graph, small_params, transition=small_transition, n_workers=1
        )
        reference = build_index(
            small_web_graph, small_params, transition=small_transition
        )
        for (_, a), (_, b) in zip(index.states(), reference.states()):
            _states_bit_identical(a, b)


class TestLegacyArchiveCompat:
    def test_archive_without_backend_fields_loads_as_scalar(
        self, small_web_graph, small_transition, small_params, tmp_path
    ):
        # Archives from before the kernel layer were built by the seed loop,
        # which only the scalar backend preserves bit-identically: loading
        # them as "vectorized" would hand the dynamic maintainer a mixed
        # index matching neither backend's from-scratch build.
        index = build_index(
            small_web_graph, small_params, transition=small_transition,
            backend="scalar",
        )
        path = tmp_path / "modern.npz"
        index.save(path)
        with np.load(path, allow_pickle=False) as data:
            payload = {
                name: data[name]
                for name in data.files
                if name not in ("backend", "block_size")
            }
        legacy = tmp_path / "legacy.npz"
        np.savez_compressed(legacy, **payload)
        loaded = ReverseTopKIndex.load(legacy)
        assert loaded.params.backend == "scalar"
        assert loaded.params.block_size == IndexParams().block_size
