"""Atomic snapshot writes and pickling of the index and the engine."""

import pickle

import numpy as np
import pytest

from repro.core import ReverseTopKEngine, ReverseTopKIndex
from repro.exceptions import SerializationError


class TestAtomicSave:
    def test_save_appends_npz_suffix(self, small_index, tmp_path):
        small_index.save(tmp_path / "index")
        assert (tmp_path / "index.npz").exists()

    def test_failed_write_preserves_existing_snapshot(
        self, small_index, tmp_path, monkeypatch
    ):
        path = tmp_path / "index.npz"
        small_index.save(path)
        good_bytes = path.read_bytes()

        def torn_write(handle, **arrays):
            handle.write(b"torn partial garbage")
            raise OSError("disk full")

        monkeypatch.setattr(np, "savez_compressed", torn_write)
        with pytest.raises(SerializationError):
            small_index.save(path)
        # The existing archive is untouched and still loads.
        assert path.read_bytes() == good_bytes
        loaded = ReverseTopKIndex.load(path)
        assert loaded.n_nodes == small_index.n_nodes

    def test_failed_write_leaves_no_temp_files(
        self, small_index, tmp_path, monkeypatch
    ):
        def failing_write(handle, **arrays):
            raise OSError("disk full")

        monkeypatch.setattr(np, "savez_compressed", failing_write)
        with pytest.raises(SerializationError):
            small_index.save(tmp_path / "index.npz")
        assert list(tmp_path.iterdir()) == []

    def test_successful_save_leaves_no_temp_files(self, small_index, tmp_path):
        small_index.save(tmp_path / "index.npz")
        assert [p.name for p in tmp_path.iterdir()] == ["index.npz"]

    def test_saved_file_has_umask_default_mode(self, small_index, tmp_path):
        import os

        path = tmp_path / "index.npz"
        small_index.save(path)
        umask = os.umask(0)
        os.umask(umask)
        # Not mkstemp's private 0600: other readers of a shared snapshot
        # directory must keep working, as with a plain open()-based write.
        assert path.stat().st_mode & 0o777 == 0o666 & ~umask

    def test_concurrent_saves_of_same_path_are_safe(self, small_index, tmp_path):
        import threading

        path = tmp_path / "index.npz"
        errors = []

        def save():
            try:
                small_index.save(path)
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        threads = [threading.Thread(target=save) for _ in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors
        loaded = ReverseTopKIndex.load(path)  # whoever won, the archive is whole
        assert loaded.n_nodes == small_index.n_nodes
        assert [p.name for p in tmp_path.iterdir()] == ["index.npz"]

    def test_load_truncated_archive_raises_serialization_error(
        self, small_index, tmp_path
    ):
        # A torn write can leave a file that still starts with the zip magic;
        # np.load raises BadZipFile for it, which must surface as our error.
        path = tmp_path / "index.npz"
        small_index.save(path)
        payload = path.read_bytes()
        path.write_bytes(payload[: len(payload) // 2])
        with pytest.raises(SerializationError):
            ReverseTopKIndex.load(path)


class TestIndexPickling:
    def test_round_trip_preserves_states_and_columns(self, small_index):
        clone = pickle.loads(pickle.dumps(small_index))
        assert clone.n_nodes == small_index.n_nodes
        assert clone.capacity == small_index.capacity
        assert clone.version == small_index.version
        for node, state in small_index.states():
            restored = clone.state(node)
            assert restored.residual == state.residual
            assert restored.retained == state.retained
            assert restored.hub_ink == state.hub_ink
            np.testing.assert_array_equal(restored.lower_bounds, state.lower_bounds)
        # Columnar views are dropped from the payload and rebuilt lazily.
        np.testing.assert_array_equal(
            clone.columns.lower, small_index.columns.lower
        )
        np.testing.assert_array_equal(
            clone.columns.residual_mass, small_index.columns.residual_mass
        )
        np.testing.assert_array_equal(
            clone.columns.is_exact, small_index.columns.is_exact
        )

    def test_pickle_payload_excludes_columns(self, small_index):
        state = small_index.__getstate__()
        assert state["_columns"] is None

    def test_unpickled_index_still_refines(self, small_index, small_transition):
        clone = pickle.loads(pickle.dumps(small_index))
        engine = ReverseTopKEngine(small_transition, clone)
        before = clone.version
        for query in range(engine.n_nodes):
            engine.query(query, clone.capacity, update_index=True)
        assert clone.version > before  # write-backs work after unpickling


class TestEnginePickling:
    def test_round_trip_answers_identically(self, small_index, small_transition):
        engine = ReverseTopKEngine(small_transition, small_index)
        clone = pickle.loads(pickle.dumps(engine))
        for query in (0, 3, 11):
            expected = engine.query(query, 5, update_index=False)
            actual = clone.query(query, 5, update_index=False)
            np.testing.assert_array_equal(actual.nodes, expected.nodes)
            np.testing.assert_array_equal(
                actual.proximities_to_query, expected.proximities_to_query
            )

    def test_derived_caches_rebuilt(self, small_index, small_transition):
        engine = ReverseTopKEngine(small_transition, small_index)
        clone = pickle.loads(pickle.dumps(engine))
        assert clone._transposed.shape == engine._transposed.shape
        np.testing.assert_array_equal(clone._hub_mask, engine._hub_mask)
