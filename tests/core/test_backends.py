"""Tests for the optional-backend probe and its failure modes."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.core import IndexParams, PropagationKernel, available_backends
from repro.core.backends import (
    load_numba_kernels,
    numba_available,
    require_backend,
)
from repro.exceptions import ConfigurationError

HAS_NUMBA = numba_available()


@pytest.fixture
def tiny_setup():
    matrix = sp.csc_matrix(
        np.array(
            [
                [0.0, 0.5, 0.0],
                [1.0, 0.0, 1.0],
                [0.0, 0.5, 0.0],
            ]
        )
    )
    hub_mask = np.zeros(3, dtype=bool)
    params = IndexParams(capacity=3, hub_budget=0)
    return matrix, hub_mask, params


class TestProbe:
    def test_always_lists_the_pure_numpy_backends(self):
        backends = available_backends()
        assert "scalar" in backends
        assert "vectorized" in backends

    def test_numba_listed_exactly_when_importable(self):
        assert ("numba" in available_backends()) == HAS_NUMBA

    def test_require_accepts_available_backends(self):
        for name in available_backends():
            assert require_backend(name) == name

    def test_require_rejects_unknown_backend(self):
        with pytest.raises(ConfigurationError, match="unknown backend"):
            require_backend("cuda")

    def test_params_accept_numba_regardless_of_availability(self):
        # Declaring the backend is a config decision; availability is
        # checked when a kernel is actually constructed.
        assert IndexParams(backend="numba").backend == "numba"


@pytest.mark.skipif(HAS_NUMBA, reason="numba is installed in this environment")
class TestUnavailable:
    def test_require_numba_raises_configuration_error(self):
        with pytest.raises(ConfigurationError, match="pip install repro\\[fast\\]"):
            require_backend("numba")

    def test_loading_kernels_raises_configuration_error(self):
        with pytest.raises(ConfigurationError):
            load_numba_kernels()

    def test_kernel_construction_raises_configuration_error(self, tiny_setup):
        matrix, hub_mask, params = tiny_setup
        with pytest.raises(ConfigurationError):
            PropagationKernel(matrix, hub_mask, params, backend="numba")

    def test_numba_scan_mode_raises_configuration_error(self, tiny_setup):
        from repro.core import ReverseTopKEngine

        matrix, _, params = tiny_setup
        engine = ReverseTopKEngine.build(matrix, params)
        with pytest.raises(ConfigurationError):
            engine.query(0, k=1, scan_mode="numba")


@pytest.mark.skipif(not HAS_NUMBA, reason="numba not installed")
class TestAvailable:
    def test_kernels_load_and_expose_the_three_entry_points(self):
        jit = load_numba_kernels()
        for name in ("block_stats", "bca_block_iteration", "scan_decide"):
            assert callable(getattr(jit, name))

    def test_numba_kernel_builds_states(self, tiny_setup):
        matrix, hub_mask, params = tiny_setup
        kernel = PropagationKernel(matrix, hub_mask, params, backend="numba")
        states = kernel.run([0, 1, 2])
        assert len(states) == 3
        assert all(state.iterations >= 1 for state in states)
