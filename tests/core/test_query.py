"""Tests for Algorithm 4 — the online reverse top-k query engine."""

import copy

import numpy as np
import pytest

from repro.core import IndexParams, QueryParams, ReverseTopKEngine
from repro.exceptions import InvalidParameterError, QueryError
from repro.graph import transition_matrix, trust_graph


@pytest.fixture(scope="module")
def engine(small_transition, small_index):
    """A fresh engine per test module, backed by a private copy of the index."""
    return ReverseTopKEngine(small_transition, copy.deepcopy(small_index))


class TestQueryCorrectness:
    @pytest.mark.parametrize("k", [1, 3, 5, 10])
    def test_matches_exact_answer(
        self, small_transition, small_index, small_exact_matrix, reverse_topk_checker, k
    ):
        engine = ReverseTopKEngine(small_transition, copy.deepcopy(small_index))
        for query in (0, 7, 19, 42, 55):
            result = engine.query(query, k)
            reverse_topk_checker(result.nodes, small_exact_matrix, query, k)

    def test_matches_brute_force_without_rounding(self, small_web_graph, small_transition,
                                                  small_exact_matrix, reverse_topk_checker):
        params = IndexParams(capacity=12, hub_budget=4, rounding_threshold=0.0)
        engine = ReverseTopKEngine.build(small_web_graph, params, transition=small_transition)
        for query in (2, 13, 31):
            result = engine.query(query, 6)
            reverse_topk_checker(result.nodes, small_exact_matrix, query, 6)

    def test_no_update_mode_matches_update_mode(self, small_transition, small_index):
        updated = ReverseTopKEngine(small_transition, copy.deepcopy(small_index))
        pristine = ReverseTopKEngine(small_transition, copy.deepcopy(small_index))
        for query in (1, 8, 27):
            with_update = updated.query(query, 5, update_index=True)
            without_update = pristine.query(query, 5, update_index=False)
            assert set(with_update.nodes.tolist()) == set(without_update.nodes.tolist())

    def test_denser_graph(self, small_trust_graph, reverse_topk_checker):
        from repro.rwr import ProximityLU

        matrix = transition_matrix(small_trust_graph)
        exact = ProximityLU(matrix).matrix()
        params = IndexParams(capacity=12, hub_budget=5)
        engine = ReverseTopKEngine.build(small_trust_graph, params, transition=matrix)
        for query in (0, 10, 33, 60):
            result = engine.query(query, 4)
            reverse_topk_checker(result.nodes, exact, query, 4)

    def test_without_hubs(self, small_web_graph, small_transition, small_exact_matrix,
                          reverse_topk_checker):
        params = IndexParams(capacity=10, hub_budget=0)
        engine = ReverseTopKEngine.build(small_web_graph, params, transition=small_transition)
        result = engine.query(9, 5)
        reverse_topk_checker(result.nodes, small_exact_matrix, 9, 5)

    def test_result_contains_high_in_degree_targets(self, small_web_graph, engine):
        # The highest in-degree node collects many top-k contributions; querying
        # it must return a result set larger than k/2 on a web-like graph.
        hub = int(np.argmax(small_web_graph.in_degree))
        result = engine.query(hub, 10)
        assert len(result.nodes) >= 5

    def test_query_node_usually_in_own_result(self, engine):
        # A node's own proximity to itself is at least alpha, which almost
        # always places it inside its own top-10.
        result = engine.query(12, 10)
        assert 12 in result


class TestQueryResultObject:
    def test_ranked_is_sorted_by_proximity(self, engine):
        result = engine.query(4, 8)
        ranked = result.ranked()
        values = [value for _, value in ranked]
        assert values == sorted(values, reverse=True)

    def test_contains_and_len(self, engine):
        result = engine.query(4, 8)
        assert len(result) == result.nodes.size
        if len(result):
            assert int(result.nodes[0]) in result

    def test_proximities_vector_full_length(self, engine, small_transition):
        result = engine.query(2, 3)
        assert result.proximities_to_query.shape == (small_transition.shape[0],)


class TestQueryStatistics:
    def test_counts_are_consistent(self, engine, small_transition):
        result = engine.query(6, 5)
        stats = result.statistics
        n = small_transition.shape[0]
        assert stats.n_results == len(result.nodes)
        assert stats.n_candidates + stats.n_exact_shortcut + stats.n_pruned_immediately <= n
        assert stats.n_hits <= stats.n_candidates
        assert stats.n_refined_nodes <= stats.n_candidates
        assert stats.seconds > 0.0

    def test_stage_timings_present(self, engine):
        stats = engine.query(3, 5).statistics
        assert "pmpn" in stats.stage_seconds
        assert "scan" in stats.stage_seconds

    def test_pmpn_iterations_positive(self, engine):
        assert engine.query(3, 5).statistics.pmpn_iterations > 0

    def test_candidates_order_of_k(self, engine, small_transition):
        # Figure 6's observation: candidates ~ O(k), far below n.
        n = small_transition.shape[0]
        stats = engine.query(17, 5).statistics
        assert stats.n_candidates < n / 2


class TestIndexUpdatePolicy:
    def test_update_persists_refinements(self, small_transition, small_index):
        index = copy.deepcopy(small_index)
        engine = ReverseTopKEngine(small_transition, index)
        before = [state.iterations for _, state in index.states()]
        engine.query(0, 10, update_index=True)
        after = [state.iterations for _, state in index.states()]
        assert sum(after) >= sum(before)

    def test_no_update_leaves_index_untouched(self, small_transition, small_index):
        index = copy.deepcopy(small_index)
        engine = ReverseTopKEngine(small_transition, index)
        before_bounds = index.lower_bound_matrix().copy()
        before_iterations = [state.iterations for _, state in index.states()]
        engine.query(0, 10, update_index=False)
        np.testing.assert_array_equal(index.lower_bound_matrix(), before_bounds)
        assert [state.iterations for _, state in index.states()] == before_iterations

    def test_updated_index_reduces_later_refinement(self, small_transition, small_index):
        index = copy.deepcopy(small_index)
        engine = ReverseTopKEngine(small_transition, index)
        first = engine.query(5, 10, update_index=True).statistics.n_refinement_iterations
        second = engine.query(5, 10, update_index=True).statistics.n_refinement_iterations
        assert second <= first


class TestScanModes:
    _COUNTERS = (
        "n_results",
        "n_candidates",
        "n_hits",
        "n_exact_shortcut",
        "n_pruned_immediately",
        "n_refinement_iterations",
        "n_refined_nodes",
        "n_exact_fallbacks",
        "pmpn_iterations",
    )

    @pytest.mark.parametrize("update_index", [True, False])
    def test_vectorized_matches_scalar(self, small_transition, small_index, update_index):
        vectorized = ReverseTopKEngine(small_transition, copy.deepcopy(small_index))
        scalar = ReverseTopKEngine(small_transition, copy.deepcopy(small_index))
        for query in (0, 7, 23, 42):
            a = vectorized.query(query, 8, update_index=update_index, scan_mode="vectorized")
            b = scalar.query(query, 8, update_index=update_index, scan_mode="scalar")
            np.testing.assert_array_equal(a.nodes, b.nodes)
            for counter in self._COUNTERS:
                assert getattr(a.statistics, counter) == getattr(b.statistics, counter)

    def test_vectorized_reports_refine_stage(self, small_transition, small_index):
        engine = ReverseTopKEngine(small_transition, copy.deepcopy(small_index))
        stats = engine.query(3, 5).statistics
        assert "refine" in stats.stage_seconds

    def test_invalid_scan_mode_rejected(self, engine):
        with pytest.raises(InvalidParameterError):
            engine.query(0, 3, scan_mode="turbo")

    def test_query_many_scan_modes_agree(self, small_transition, small_index):
        vectorized = ReverseTopKEngine(small_transition, copy.deepcopy(small_index))
        scalar = ReverseTopKEngine(small_transition, copy.deepcopy(small_index))
        for a, b in zip(
            vectorized.query_many([0, 5, 9], k=4, scan_mode="vectorized"),
            scalar.query_many([0, 5, 9], k=4, scan_mode="scalar"),
        ):
            np.testing.assert_array_equal(a.nodes, b.nodes)


class TestQueryValidation:
    def test_k_exceeding_capacity_rejected(self, engine, small_params):
        with pytest.raises(InvalidParameterError):
            engine.query(0, small_params.capacity + 1)

    def test_invalid_query_node_rejected(self, engine):
        with pytest.raises(InvalidParameterError):
            engine.query(10_000, 5)

    def test_mismatched_index_rejected(self, small_index):
        other = transition_matrix(trust_graph(30, seed=2))
        with pytest.raises(QueryError):
            ReverseTopKEngine(other, copy.deepcopy(small_index))

    def test_query_params_override(self, engine):
        result = engine.query(0, 3, params=QueryParams(k=5, update_index=False))
        assert result.k == 5

    def test_query_many_returns_per_query_results(self, engine):
        results = engine.query_many([0, 1, 2], k=4)
        assert len(results) == 3
        assert all(r.k == 4 for r in results)
