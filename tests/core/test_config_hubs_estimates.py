"""Tests for IndexParams/QueryParams, hub selection and the analytical estimates."""

import numpy as np
import pytest

from repro.core import IndexParams, QueryParams
from repro.core.estimates import (
    DEFAULT_BETA,
    hub_entries_above_threshold,
    predicted_index_bytes,
    predicted_index_entries,
    rounding_error_bound,
)
from repro.core.hubs import HubSet, select_hubs_by_degree, select_hubs_greedy
from repro.exceptions import InvalidParameterError
from repro.graph import star_graph, transition_matrix


class TestIndexParams:
    def test_paper_defaults(self):
        params = IndexParams()
        assert params.alpha == 0.15
        assert params.capacity == 200
        assert params.propagation_threshold == 1e-4
        assert params.residue_threshold == 0.1
        assert params.rounding_threshold == 1e-6

    def test_rejects_invalid_alpha(self):
        with pytest.raises((InvalidParameterError, ValueError)):
            IndexParams(alpha=1.5)

    def test_rejects_negative_hub_budget(self):
        with pytest.raises(ValueError):
            IndexParams(hub_budget=-1)

    def test_rejects_zero_capacity(self):
        with pytest.raises((InvalidParameterError, ValueError)):
            IndexParams(capacity=0)

    def test_for_graph_clamps_capacity(self):
        params = IndexParams(capacity=200, hub_budget=50).for_graph(20)
        assert params.capacity == 20
        assert params.hub_budget <= 10

    def test_for_graph_noop_when_small_enough(self):
        params = IndexParams(capacity=5, hub_budget=2)
        assert params.for_graph(100) is params

    def test_frozen(self):
        with pytest.raises(AttributeError):
            IndexParams().alpha = 0.3  # type: ignore[misc]


class TestQueryParams:
    def test_defaults(self):
        params = QueryParams()
        assert params.k == 10
        assert params.update_index is True

    def test_rejects_bad_k(self):
        with pytest.raises((InvalidParameterError, ValueError)):
            QueryParams(k=0)

    def test_rejects_bad_tolerance(self):
        with pytest.raises((InvalidParameterError, ValueError)):
            QueryParams(tolerance=-1.0)


class TestHubSet:
    def test_from_iterable_dedupes_and_sorts(self):
        hubs = HubSet.from_iterable([5, 1, 5, 3])
        assert hubs.nodes == (1, 3, 5)

    def test_membership_and_position(self):
        hubs = HubSet.from_iterable([2, 7])
        assert 7 in hubs
        assert 3 not in hubs
        assert hubs.position(7) == 1

    def test_mask(self):
        hubs = HubSet.from_iterable([0, 2])
        assert hubs.mask(4).tolist() == [True, False, True, False]

    def test_empty(self):
        hubs = HubSet(())
        assert len(hubs) == 0
        assert not hubs.mask(3).any()


class TestDegreeHubSelection:
    def test_star_centre_selected(self):
        star = star_graph(6)
        hubs = select_hubs_by_degree(star, 1)
        assert 0 in hubs

    def test_budget_zero_gives_empty(self, small_web_graph):
        assert len(select_hubs_by_degree(small_web_graph, 0)) == 0

    def test_size_between_budget_and_twice_budget(self, small_web_graph):
        budget = 5
        hubs = select_hubs_by_degree(small_web_graph, budget)
        assert budget <= len(hubs) <= 2 * budget

    def test_contains_highest_in_degree_node(self, small_web_graph):
        hubs = select_hubs_by_degree(small_web_graph, 3)
        assert int(np.argmax(small_web_graph.in_degree)) in hubs

    def test_budget_larger_than_graph(self, small_web_graph):
        hubs = select_hubs_by_degree(small_web_graph, 10_000)
        assert len(hubs) == small_web_graph.n_nodes

    def test_deterministic(self, small_web_graph):
        assert select_hubs_by_degree(small_web_graph, 4).nodes == select_hubs_by_degree(
            small_web_graph, 4
        ).nodes


class TestSelectorParityOnDegreeTies:
    """Graph- and matrix-based selectors share one tie-break (degree_union_hubs)."""

    @staticmethod
    def _matrix_selection(graph, budget):
        from repro.core.lbi import _select_hubs_from_matrix
        from repro.graph import transition_matrix

        return _select_hubs_from_matrix(transition_matrix(graph), budget)

    def test_ring_all_degrees_tied(self):
        # Every node of a ring has in-degree = out-degree = 1: the selection
        # is decided purely by the tie-break, which must be shared.
        from repro.graph import ring_graph

        graph = ring_graph(12)
        for budget in (1, 3, 5, 12):
            assert (
                select_hubs_by_degree(graph, budget).nodes
                == self._matrix_selection(graph, budget).nodes
            )

    def test_tie_heavy_custom_graph(self):
        # Two groups of nodes with identical degrees, budget cutting through
        # the tie — exactly where a drifting secondary sort key would show.
        import scipy.sparse as sp

        from repro.graph import DiGraph

        edges = []
        for u in (0, 1, 2, 3):  # tied out-degree 2
            edges += [(u, 4), (u, 5)]
        for u in (6, 7):  # tied out-degree 1, pointing at tied receivers
            edges += [(u, 8)]
        edges += [(4, 0), (5, 1), (8, 6)]
        rows, cols = zip(*edges)
        adjacency = sp.csr_matrix(
            (np.ones(len(edges)), (rows, cols)), shape=(9, 9)
        )
        graph = DiGraph(adjacency)
        for budget in range(1, 9):
            assert (
                select_hubs_by_degree(graph, budget).nodes
                == self._matrix_selection(graph, budget).nodes
            ), budget

    def test_parity_on_generated_graphs(self, small_web_graph, small_trust_graph):
        for graph in (small_web_graph, small_trust_graph):
            for budget in (2, 5, 9):
                assert (
                    select_hubs_by_degree(graph, budget).nodes
                    == self._matrix_selection(graph, budget).nodes
                )


class TestGreedyHubSelection:
    def test_returns_requested_count(self, small_web_graph, small_transition):
        hubs = select_hubs_greedy(small_web_graph, small_transition, 5, seed=1)
        assert len(hubs) == 5

    def test_reproducible(self, small_web_graph, small_transition):
        first = select_hubs_greedy(small_web_graph, small_transition, 4, seed=2)
        second = select_hubs_greedy(small_web_graph, small_transition, 4, seed=2)
        assert first.nodes == second.nodes

    def test_greedy_hubs_have_aboveaverage_degree(self, small_web_graph, small_transition):
        hubs = select_hubs_greedy(small_web_graph, small_transition, 5, seed=0)
        total_degree = small_web_graph.in_degree + small_web_graph.out_degree
        assert total_degree[list(hubs.nodes)].mean() >= total_degree.mean() * 0.8


class TestEstimates:
    def test_entries_decrease_with_larger_threshold(self):
        few = hub_entries_above_threshold(10_000, 1e-4)
        many = hub_entries_above_threshold(10_000, 1e-6)
        assert few < many

    def test_entries_capped_at_n(self):
        assert hub_entries_above_threshold(100, 1e-12) == 100

    def test_predicted_entries_structure(self):
        total = predicted_index_entries(1000, 50, 10, 1e-6)
        assert total >= 50 * 1000  # at least the K*n lower bound matrix

    def test_predicted_bytes_grow_with_hubs(self):
        small = predicted_index_bytes(1000, 50, 5, 1e-6)
        large = predicted_index_bytes(1000, 50, 50, 1e-6)
        assert large > small

    def test_rounding_error_bound_in_unit_interval(self):
        for omega in (1e-4, 1e-6, 1e-8):
            bound = rounding_error_bound(10_000, omega)
            assert 0.0 <= bound <= 1.0

    def test_rounding_error_bound_monotone_in_omega(self):
        coarse = rounding_error_bound(10_000, 1e-3)
        fine = rounding_error_bound(10_000, 1e-7)
        assert fine <= coarse

    def test_invalid_beta_rejected(self):
        with pytest.raises(InvalidParameterError):
            rounding_error_bound(100, 1e-6, beta=1.5)

    def test_default_beta_matches_paper(self):
        assert DEFAULT_BETA == pytest.approx(0.76)
