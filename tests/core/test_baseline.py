"""Tests for the brute-force baselines (BF, IBF, FBF)."""

import copy

import numpy as np
import pytest

from repro.core import (
    FeasibleBruteForce,
    InfeasibleBruteForce,
    ReverseTopKEngine,
    brute_force_reverse_topk,
)


class TestBruteForce:
    def test_matches_exact_matrix_definition(self, small_transition, small_exact_matrix):
        k = 4
        for query in (0, 9, 25):
            answer = set(brute_force_reverse_topk(small_transition, query, k).tolist())
            for node in range(small_exact_matrix.shape[0]):
                column = small_exact_matrix[:, node]
                kth = np.sort(column)[-k]
                if column[query] > kth + 1e-9:
                    assert node in answer
                elif column[query] < kth - 1e-9:
                    assert node not in answer

    def test_expected_result_size_order_of_k(self, small_transition):
        # Averaged over all queries the expected answer size is exactly k.
        k = 3
        sizes = [
            len(brute_force_reverse_topk(small_transition, query, k))
            for query in range(0, small_transition.shape[0], 10)
        ]
        assert np.mean(sizes) > 0


class TestInfeasibleBruteForce:
    @pytest.fixture(scope="class")
    def ibf(self, small_transition):
        return InfeasibleBruteForce(small_transition, capacity=15)

    def test_matches_exact_answer(self, ibf, small_exact_matrix, reverse_topk_checker):
        for query in (1, 12, 40):
            reverse_topk_checker(ibf.query(query, 5), small_exact_matrix, query, 5)

    def test_agrees_with_brute_force_on_clear_cases(self, ibf, small_transition,
                                                    small_exact_matrix, reverse_topk_checker):
        for query in (1, 12, 40):
            bf = brute_force_reverse_topk(small_transition, query, 5)
            reverse_topk_checker(bf, small_exact_matrix, query, 5)
            reverse_topk_checker(ibf.query(query, 5), small_exact_matrix, query, 5)

    def test_offline_cost_recorded(self, ibf):
        assert ibf.offline_seconds > 0.0

    def test_storage_accounts_dense_matrix(self, ibf, small_transition):
        n = small_transition.shape[0]
        assert ibf.storage_bytes() >= n * n * 8

    def test_capacity_respected(self, ibf):
        from repro.exceptions import InvalidParameterError

        with pytest.raises(InvalidParameterError):
            ibf.query(0, 100)


class TestFeasibleBruteForce:
    @pytest.fixture(scope="class")
    def fbf(self, small_transition):
        return FeasibleBruteForce(small_transition, capacity=15)

    def test_matches_exact_answer(self, fbf, small_exact_matrix, reverse_topk_checker):
        for query in (2, 18, 33):
            reverse_topk_checker(fbf.query(query, 5), small_exact_matrix, query, 5)

    def test_storage_smaller_than_ibf(self, fbf, small_transition):
        ibf = InfeasibleBruteForce(small_transition, capacity=15)
        assert fbf.storage_bytes() < ibf.storage_bytes()

    def test_agrees_with_engine(self, fbf, small_transition, small_index, reverse_topk_checker,
                                small_exact_matrix):
        engine = ReverseTopKEngine(small_transition, copy.deepcopy(small_index))
        for query in (3, 22):
            ours = engine.query(query, 5)
            reverse_topk_checker(ours.nodes, small_exact_matrix, query, 5)
            baseline = set(fbf.query(query, 5).tolist())
            # Both must agree on clearly-decided nodes; allow boundary ties.
            reverse_topk_checker(list(baseline), small_exact_matrix, query, 5)
