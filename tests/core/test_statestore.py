"""Columnar node-state store: bitwise parity with per-node objects.

The build/shard hot paths write residual / retained / hub-ink entries
straight into preallocated struct-of-arrays storage; ``NodeState`` survives
only as a lazy per-node *view*.  These tests pin the contract:

* a store-backed build is **bit-identical** to an object-backed index over
  the same states (columns, per-node dicts, bounds);
* building never materialises per-node ``NodeState`` objects (module
  counter);
* the columnar store round-trips through sharded memmap persist/load and
  pickling without changing a byte;
* build observability counters keep flowing.
"""

import pickle

import numpy as np
import pytest

from repro.core import IndexParams
from repro.core.index import ReverseTopKIndex
from repro.core.lbi import build_index
from repro.core.sharding import ShardedReverseTopKIndex, build_sharded_index
from repro.core.statestore import (
    STATE_ARRAY_NAMES,
    materialization_count,
    reset_materialization_count,
)
from repro.graph.datasets import load_dataset
from repro.obs.registry import get_registry

PARAMS = IndexParams(capacity=8, hub_budget=6, backend="vectorized")


@pytest.fixture(scope="module")
def graph():
    return load_dataset("web-stanford-cs", scale=0.12)


@pytest.fixture(scope="module")
def store_index(graph):
    return build_index(graph, PARAMS.for_graph(graph.n_nodes))


@pytest.fixture(scope="module")
def object_twin(store_index):
    # Same states, object-backed: the representation under test vs the
    # historical one, with identical kernel parameters.
    return ReverseTopKIndex(
        store_index.params,
        store_index.hubs,
        store_index.hub_matrix,
        store_index.hub_deficit,
        [state for _, state in store_index.states()],
    )


def assert_states_equal(left, right):
    for (node_a, state_a), (node_b, state_b) in zip(left.states(), right.states()):
        assert node_a == node_b
        assert state_a.residual == state_b.residual
        assert state_a.retained == state_b.retained
        assert state_a.hub_ink == state_b.hub_ink
        assert state_a.is_hub == state_b.is_hub
        np.testing.assert_array_equal(state_a.lower_bounds, state_b.lower_bounds)


class TestStoreVersusObjects:
    def test_build_is_store_backed_for_vector_backends(self, store_index):
        assert store_index.store is not None

    def test_columns_bitwise_equal(self, store_index, object_twin):
        np.testing.assert_array_equal(
            store_index.columns.lower, object_twin.columns.lower
        )
        np.testing.assert_array_equal(
            store_index.columns.residual_mass, object_twin.columns.residual_mass
        )
        np.testing.assert_array_equal(
            store_index.columns.is_exact, object_twin.columns.is_exact
        )

    def test_states_bitwise_equal(self, store_index, object_twin):
        assert_states_equal(store_index, object_twin)

    def test_build_emits_observability_counters(self, graph):
        registry = get_registry()
        family = registry.counter(
            "repro_index_builds_total", "Completed index builds",
            labels=("backend",),
        )
        seconds = registry.counter(
            "repro_index_build_seconds_total", "Seconds per index-build phase",
            labels=("backend", "stage"),
        )
        before = family.labels(backend="vectorized").value
        seconds_before = seconds.labels(backend="vectorized", stage="bca").value
        build_index(graph, PARAMS.for_graph(graph.n_nodes))
        after = family.labels(backend="vectorized").value
        seconds_after = seconds.labels(backend="vectorized", stage="bca").value
        assert after == before + 1
        assert seconds_after > seconds_before


class TestNoMaterializationOnBuild:
    def test_sharded_build_materialises_zero_nodestates(self, graph):
        reset_materialization_count()
        index = build_sharded_index(
            graph, PARAMS.for_graph(graph.n_nodes), n_shards=3
        )
        assert materialization_count() == 0
        # Accessing a state lazily *does* count — the counter is live.
        _ = index.state(0)
        assert materialization_count() == 1

    def test_monolithic_build_materialises_zero_nodestates(self, graph):
        reset_materialization_count()
        build_index(graph, PARAMS.for_graph(graph.n_nodes))
        assert materialization_count() == 0


class TestRoundTrips:
    def test_sharded_memmap_persist_load_bitwise(self, graph, store_index, tmp_path):
        sharded = build_sharded_index(
            graph,
            PARAMS.for_graph(graph.n_nodes),
            n_shards=3,
            directory=tmp_path / "layout",
            memory_budget=0,
        )
        loaded = ShardedReverseTopKIndex.load(tmp_path / "layout", memory_budget=0)
        np.testing.assert_array_equal(
            np.asarray(loaded.kth_lower_bounds(PARAMS.capacity)),
            np.asarray(sharded.kth_lower_bounds(PARAMS.capacity)),
        )
        for shard, twin in zip(sharded.shards, loaded.shards):
            np.testing.assert_array_equal(
                np.asarray(shard.columns.lower), np.asarray(twin.columns.lower)
            )
            np.testing.assert_array_equal(
                np.asarray(shard.columns.residual_mass),
                np.asarray(twin.columns.residual_mass),
            )
        assert_states_equal(sharded, loaded)
        # ... and matches the monolithic store-backed build bitwise.
        np.testing.assert_array_equal(
            np.hstack([np.asarray(s.columns.lower) for s in loaded.shards]),
            store_index.columns.lower,
        )

    def test_pickle_round_trip_bitwise(self, graph):
        sharded = build_sharded_index(
            graph, PARAMS.for_graph(graph.n_nodes), n_shards=2
        )
        clone = pickle.loads(pickle.dumps(sharded))
        for shard, twin in zip(sharded.shards, clone.shards):
            np.testing.assert_array_equal(
                np.asarray(shard.columns.lower), np.asarray(twin.columns.lower)
            )
        assert_states_equal(sharded, clone)

    def test_state_array_layout_is_stable(self):
        # The 12-plane layout is a persistence format; renaming/reordering
        # breaks memmap layouts on disk.
        assert STATE_ARRAY_NAMES == (
            "residual_indptr", "residual_keys", "residual_values",
            "retained_indptr", "retained_keys", "retained_values",
            "hub_ink_indptr", "hub_ink_keys", "hub_ink_values",
            "lower_bounds", "iterations", "is_hub",
        )
