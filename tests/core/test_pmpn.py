"""Tests for Algorithm 2 (PMPN) — exact proximities to a node."""

import numpy as np
import pytest

from repro.core.pmpn import PMPNResult, pmpn_iteration_bound, proximity_to_node
from repro.exceptions import ConvergenceError, InvalidParameterError
from repro.graph import ring_graph, transition_matrix
from repro.rwr import ProximityLU, proximity_column


class TestPMPNCorrectness:
    def test_matches_row_of_exact_matrix(self, small_transition, small_exact_matrix):
        for query in (0, 5, 23):
            result = proximity_to_node(small_transition, query)
            np.testing.assert_allclose(result.proximities, small_exact_matrix[query, :], atol=1e-7)

    def test_matches_column_entries(self, small_transition):
        # p_{q,*}(u) must equal p_u(q) computed column-wise (Theorem 2).
        query = 7
        row = proximity_to_node(small_transition, query).proximities
        for node in (0, 3, 11, 30):
            column = proximity_column(small_transition, node)
            assert row[node] == pytest.approx(column[query], abs=1e-7)

    def test_cost_independent_of_result_size(self, small_transition):
        # Same iteration count magnitude as a single forward power-method run.
        result = proximity_to_node(small_transition, 0, tolerance=1e-10)
        assert result.iterations <= 2 * pmpn_iteration_bound(0.15, 1e-10) + 10

    def test_converges_from_arbitrary_start(self, small_transition, small_exact_matrix):
        n = small_transition.shape[0]
        rng = np.random.default_rng(0)
        start = rng.random(n) * 5.0
        result = proximity_to_node(small_transition, 9, initial=start)
        np.testing.assert_allclose(result.proximities, small_exact_matrix[9, :], atol=1e-7)

    def test_ring_graph_row(self):
        matrix = transition_matrix(ring_graph(5))
        lu = ProximityLU(matrix)
        row = proximity_to_node(matrix, 2).proximities
        np.testing.assert_allclose(row, lu.row(2), atol=1e-8)

    def test_query_entry_is_largest_on_ring(self):
        # On a symmetric cycle, the node closest to q (q itself) contributes most.
        matrix = transition_matrix(ring_graph(7))
        row = proximity_to_node(matrix, 3).proximities
        assert int(np.argmax(row)) == 3


class TestPMPNBehaviour:
    def test_result_fields(self, small_transition):
        result = proximity_to_node(small_transition, 1)
        assert isinstance(result, PMPNResult)
        assert result.converged
        assert result.residual < 1e-10
        assert result.iterations > 0

    def test_rejects_bad_query(self, small_transition):
        with pytest.raises(InvalidParameterError):
            proximity_to_node(small_transition, -1)

    def test_rejects_bad_initial_length(self, small_transition):
        with pytest.raises(ValueError):
            proximity_to_node(small_transition, 0, initial=np.ones(3))

    def test_raises_on_failure_by_default(self, small_transition):
        with pytest.raises(ConvergenceError):
            proximity_to_node(small_transition, 0, max_iterations=1, tolerance=1e-14)

    def test_non_raising_mode(self, small_transition):
        result = proximity_to_node(
            small_transition, 0, max_iterations=1, tolerance=1e-14, raise_on_failure=False
        )
        assert not result.converged

    def test_iteration_bound_formula(self):
        assert pmpn_iteration_bound(0.15, 1e-10) == pytest.approx(131, abs=2)

    def test_convergence_rate_bounded_by_one_minus_alpha(self, small_transition):
        # Theorem 2(b) gives 1 - alpha as the *worst-case* rate: the extra
        # iterations for a 1e4-times tighter tolerance never exceed the bound
        # (real graphs often converge faster).
        loose = proximity_to_node(small_transition, 0, tolerance=1e-4).iterations
        tight = proximity_to_node(small_transition, 0, tolerance=1e-8).iterations
        worst_case_gap = np.log(1e-8 / 1e-4) / np.log(1 - 0.15)
        assert tight >= loose
        assert (tight - loose) <= worst_case_gap + 10
