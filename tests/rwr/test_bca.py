"""Tests for the classic BCA and push algorithms (lower-bound property etc.)."""

import numpy as np
import pytest

from repro.rwr import bca_proximity_vector, proximity_column, push_proximity_vector


class TestBCAProximityVector:
    def test_retained_is_lower_bound(self, small_transition):
        exact = proximity_column(small_transition, 0)
        result = bca_proximity_vector(small_transition, 0, residue_threshold=1e-3)
        assert np.all(result.retained <= exact + 1e-9)

    def test_converges_to_exact_with_tight_threshold(self, small_transition):
        exact = proximity_column(small_transition, 5)
        result = bca_proximity_vector(small_transition, 5, residue_threshold=1e-10)
        np.testing.assert_allclose(result.retained, exact, atol=1e-7)

    def test_mass_conservation(self, small_transition):
        result = bca_proximity_vector(small_transition, 3, residue_threshold=1e-6)
        total = result.retained.sum() + result.residual.sum()
        assert total == pytest.approx(1.0, abs=1e-9)

    def test_residual_mass_below_threshold(self, small_transition):
        result = bca_proximity_vector(small_transition, 2, residue_threshold=1e-4)
        assert result.residual_mass <= 1e-4 + 1e-12

    def test_is_exact_flag(self, small_transition):
        rough = bca_proximity_vector(small_transition, 1, residue_threshold=0.5)
        assert not rough.is_exact

    def test_push_budget_respected(self, small_transition):
        result = bca_proximity_vector(small_transition, 0, max_pushes=3)
        assert result.iterations <= 3


class TestPushProximityVector:
    def test_retained_is_lower_bound(self, small_transition):
        exact = proximity_column(small_transition, 7)
        result = push_proximity_vector(small_transition, 7, propagation_threshold=1e-4)
        assert np.all(result.retained <= exact + 1e-9)

    def test_mass_conservation(self, small_transition):
        result = push_proximity_vector(small_transition, 7, propagation_threshold=1e-5)
        assert result.retained.sum() + result.residual.sum() == pytest.approx(1.0, abs=1e-9)

    def test_no_residue_above_threshold_at_termination(self, small_transition):
        eta = 1e-4
        result = push_proximity_vector(small_transition, 4, propagation_threshold=eta)
        assert result.residual.max() < eta

    def test_smaller_threshold_gives_tighter_bound(self, small_transition):
        coarse = push_proximity_vector(small_transition, 9, propagation_threshold=1e-2)
        fine = push_proximity_vector(small_transition, 9, propagation_threshold=1e-6)
        assert fine.retained.sum() >= coarse.retained.sum() - 1e-12

    def test_approaches_exact(self, small_transition):
        exact = proximity_column(small_transition, 11)
        result = push_proximity_vector(
            small_transition, 11, propagation_threshold=1e-8, max_pushes=200_000
        )
        np.testing.assert_allclose(result.retained, exact, atol=1e-5)
