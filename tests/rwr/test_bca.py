"""Tests for the classic BCA and push algorithms (lower-bound property etc.)."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.rwr import bca_proximity_vector, proximity_column, push_proximity_vector


class TestBCAProximityVector:
    def test_retained_is_lower_bound(self, small_transition):
        exact = proximity_column(small_transition, 0)
        result = bca_proximity_vector(small_transition, 0, residue_threshold=1e-3)
        assert np.all(result.retained <= exact + 1e-9)

    def test_converges_to_exact_with_tight_threshold(self, small_transition):
        exact = proximity_column(small_transition, 5)
        result = bca_proximity_vector(small_transition, 5, residue_threshold=1e-10)
        np.testing.assert_allclose(result.retained, exact, atol=1e-7)

    def test_mass_conservation(self, small_transition):
        result = bca_proximity_vector(small_transition, 3, residue_threshold=1e-6)
        total = result.retained.sum() + result.residual.sum()
        assert total == pytest.approx(1.0, abs=1e-9)

    def test_residual_mass_below_threshold(self, small_transition):
        result = bca_proximity_vector(small_transition, 2, residue_threshold=1e-4)
        assert result.residual_mass <= 1e-4 + 1e-12

    def test_is_exact_flag(self, small_transition):
        rough = bca_proximity_vector(small_transition, 1, residue_threshold=0.5)
        assert not rough.is_exact

    def test_push_budget_respected(self, small_transition):
        result = bca_proximity_vector(small_transition, 0, max_pushes=3)
        assert result.iterations <= 3


def _near_half_update_transition() -> sp.csc_matrix:
    """A cyclic transition engineered to trigger near-half residue updates.

    Processing node 3 regrows the residues of already-processed nodes 0 and 1
    to roughly half / one-and-a-half times the values their older heap
    entries were pushed with — exactly the region where the old
    ``np.isclose(rtol=0.5)`` staleness heuristic could misclassify an entry
    (dropping a fresh one or processing a stale one out of max-residue
    order).  Column ``j`` lists the out-distribution of node ``j``.
    """
    transition = np.zeros((5, 5))
    transition[[1, 2, 3], 0] = (0.3, 0.4, 0.3)
    transition[2, 1] = 1.0
    transition[[3, 4], 2] = (0.55, 0.45)
    transition[[0, 1], 3] = (0.5, 0.5)
    transition[0, 4] = 1.0
    return sp.csc_matrix(transition)


def _reference_max_first(dense, source, alpha, max_pushes, residue_threshold):
    """Independent Berkhin reference: always process the current max residue."""
    n = dense.shape[0]
    residual = np.zeros(n)
    retained = np.zeros(n)
    residual[source] = 1.0
    total = 1.0
    pushes = 0
    while total > residue_threshold and pushes < max_pushes and residual.max() > 0:
        node = int(np.argmax(residual))
        amount = residual[node]
        residual[node] = 0.0
        retained[node] += alpha * amount
        total -= amount
        shares = (1.0 - alpha) * amount * dense[:, node]
        residual += shares
        total += float(shares.sum())
        pushes += 1
    return retained, residual


class TestLazyDeletionHeapRegression:
    """Sequence-numbered staleness detection (regression for the rtol=0.5 check)."""

    def test_prefixes_follow_max_residue_discipline(self):
        # Every push-budget prefix must match the reference trajectory that
        # always processes the single largest residue: the value-based
        # staleness heuristic broke this ordering once residues drifted by
        # about half between push and pop.
        transition = _near_half_update_transition()
        dense = transition.toarray()
        for budget in range(1, 25):
            result = bca_proximity_vector(
                transition, 0, alpha=0.3, residue_threshold=1e-12, max_pushes=budget
            )
            expected_retained, expected_residual = _reference_max_first(
                dense, 0, 0.3, budget, 1e-12
            )
            np.testing.assert_allclose(
                result.retained, expected_retained, rtol=0, atol=1e-13
            )
            np.testing.assert_allclose(
                result.residual, expected_residual, rtol=0, atol=1e-13
            )

    def test_converges_exactly_on_near_half_graph(self):
        transition = _near_half_update_transition()
        exact = proximity_column(transition, 0, alpha=0.3)
        result = bca_proximity_vector(
            transition, 0, alpha=0.3, residue_threshold=1e-10
        )
        np.testing.assert_allclose(result.retained, exact, atol=1e-7)
        # Ink conservation: retained plus outstanding residue is one unit.
        total = result.retained.sum() + result.residual.sum()
        assert total == pytest.approx(1.0, abs=1e-9)
        assert result.residual_mass <= 1e-10 + 1e-15

    def test_no_duplicate_processing_of_stale_entries(self):
        # With sequence numbers a node is processed at most once per residue
        # generation: on a two-node cycle the number of pushes needed to hit
        # the threshold is exactly the analytic count, with no wasted pops.
        transition = sp.csc_matrix(np.array([[0.0, 1.0], [1.0, 0.0]]))
        alpha = 0.5
        threshold = 1e-6
        result = bca_proximity_vector(
            transition, 0, alpha=alpha, residue_threshold=threshold
        )
        # Residue halves on every push: 2^-k <= 1e-6 after exactly 20 pushes.
        assert result.iterations == 20
        assert result.residual_mass <= threshold


class TestPushProximityVector:
    def test_retained_is_lower_bound(self, small_transition):
        exact = proximity_column(small_transition, 7)
        result = push_proximity_vector(small_transition, 7, propagation_threshold=1e-4)
        assert np.all(result.retained <= exact + 1e-9)

    def test_mass_conservation(self, small_transition):
        result = push_proximity_vector(small_transition, 7, propagation_threshold=1e-5)
        assert result.retained.sum() + result.residual.sum() == pytest.approx(1.0, abs=1e-9)

    def test_no_residue_above_threshold_at_termination(self, small_transition):
        eta = 1e-4
        result = push_proximity_vector(small_transition, 4, propagation_threshold=eta)
        assert result.residual.max() < eta

    def test_smaller_threshold_gives_tighter_bound(self, small_transition):
        coarse = push_proximity_vector(small_transition, 9, propagation_threshold=1e-2)
        fine = push_proximity_vector(small_transition, 9, propagation_threshold=1e-6)
        assert fine.retained.sum() >= coarse.retained.sum() - 1e-12

    def test_approaches_exact(self, small_transition):
        exact = proximity_column(small_transition, 11)
        result = push_proximity_vector(
            small_transition, 11, propagation_threshold=1e-8, max_pushes=200_000
        )
        np.testing.assert_allclose(result.retained, exact, atol=1e-5)
