"""Tests for the power-method proximity solver."""

import numpy as np
import pytest

from repro.exceptions import ConvergenceError, InvalidParameterError
from repro.graph import ring_graph, transition_matrix
from repro.rwr import ProximityLU, proximity_column, proximity_matrix, proximity_vector
from repro.rwr.power_method import expected_iterations


class TestProximityVector:
    def test_sums_to_one(self, small_transition):
        result = proximity_vector(small_transition, 0)
        assert result.vector.sum() == pytest.approx(1.0, abs=1e-8)
        assert result.converged

    def test_non_negative(self, small_transition):
        vector = proximity_column(small_transition, 3)
        assert vector.min() >= 0.0

    def test_matches_direct_solver(self, small_transition):
        lu = ProximityLU(small_transition)
        for node in (0, 7, 21):
            iterative = proximity_column(small_transition, node)
            direct = lu.column(node)
            np.testing.assert_allclose(iterative, direct, atol=1e-8)

    def test_restart_node_has_high_proximity(self, small_transition):
        vector = proximity_column(small_transition, 5)
        assert vector[5] >= 0.15  # at least the restart mass alpha

    def test_alpha_one_sided_effect(self, small_transition):
        low_alpha = proximity_column(small_transition, 0, alpha=0.05)
        high_alpha = proximity_column(small_transition, 0, alpha=0.5)
        # Higher restart probability concentrates more mass at the source.
        assert high_alpha[0] > low_alpha[0]

    def test_ring_symmetry(self):
        matrix = transition_matrix(ring_graph(4))
        from_zero = proximity_column(matrix, 0)
        from_one = proximity_column(matrix, 1)
        # Rotational symmetry: proximity pattern is a cyclic shift.
        np.testing.assert_allclose(np.roll(from_zero, 1), from_one, atol=1e-9)

    def test_invalid_source_rejected(self, small_transition):
        with pytest.raises(InvalidParameterError):
            proximity_vector(small_transition, 10_000)

    def test_invalid_alpha_rejected(self, small_transition):
        with pytest.raises(InvalidParameterError):
            proximity_vector(small_transition, 0, alpha=1.5)

    def test_convergence_error_when_budget_too_small(self, small_transition):
        with pytest.raises(ConvergenceError):
            proximity_vector(small_transition, 0, max_iterations=1, tolerance=1e-12)

    def test_no_raise_mode_returns_partial(self, small_transition):
        result = proximity_vector(
            small_transition, 0, max_iterations=1, tolerance=1e-12, raise_on_failure=False
        )
        assert not result.converged
        assert result.iterations == 1


class TestExpectedIterations:
    def test_bound_formula(self):
        # log(eps/alpha) / log(1-alpha) for alpha=0.15, eps=1e-10.
        assert expected_iterations(0.15, 1e-10) == pytest.approx(131, abs=2)

    def test_looser_tolerance_needs_fewer_iterations(self):
        assert expected_iterations(0.15, 1e-4) < expected_iterations(0.15, 1e-10)

    def test_tolerance_above_alpha(self):
        assert expected_iterations(0.15, 0.5) == 1


class TestProximityMatrix:
    def test_columns_match_individual_runs(self, small_transition):
        matrix = proximity_matrix(small_transition, nodes=np.array([0, 1, 2]))
        for position, node in enumerate((0, 1, 2)):
            np.testing.assert_allclose(
                matrix[:, position], proximity_column(small_transition, node), atol=1e-9
            )

    def test_full_matrix_is_stochastic_columnwise(self):
        matrix = transition_matrix(ring_graph(6))
        full = proximity_matrix(matrix)
        np.testing.assert_allclose(full.sum(axis=0), np.ones(6), atol=1e-8)
