"""Tests for the direct (LU) proximity solvers."""

import numpy as np
import pytest

from repro.core.pmpn import proximity_to_node
from repro.rwr import (
    ProximityLU,
    proximity_column,
    proximity_matrix_direct,
    proximity_vector_direct,
)


class TestProximityLU:
    def test_column_matches_power_method(self, small_transition):
        lu = ProximityLU(small_transition)
        np.testing.assert_allclose(
            lu.column(4), proximity_column(small_transition, 4), atol=1e-8
        )

    def test_row_matches_pmpn(self, small_transition):
        lu = ProximityLU(small_transition)
        np.testing.assert_allclose(
            lu.row(4), proximity_to_node(small_transition, 4).proximities, atol=1e-8
        )

    def test_matrix_consistency(self, small_transition):
        lu = ProximityLU(small_transition)
        matrix = lu.matrix()
        np.testing.assert_allclose(matrix[:, 3], lu.column(3), atol=1e-10)
        np.testing.assert_allclose(matrix[7, :], lu.row(7), atol=1e-10)

    def test_matrix_columns_sum_to_one(self, small_transition):
        matrix = ProximityLU(small_transition).matrix()
        np.testing.assert_allclose(matrix.sum(axis=0), 1.0, atol=1e-9)

    def test_rejects_non_square(self):
        import scipy.sparse as sp

        with pytest.raises(ValueError):
            ProximityLU(sp.csc_matrix(np.ones((2, 3))))

    def test_one_off_helpers(self, small_transition):
        lu = ProximityLU(small_transition)
        np.testing.assert_allclose(
            proximity_vector_direct(small_transition, 2), lu.column(2), atol=1e-12
        )
        np.testing.assert_allclose(
            proximity_matrix_direct(small_transition), lu.matrix(), atol=1e-12
        )

    def test_alpha_parameter_respected(self, small_transition):
        default = ProximityLU(small_transition).column(0)
        stronger_restart = ProximityLU(small_transition, alpha=0.5).column(0)
        assert stronger_restart[0] > default[0]
