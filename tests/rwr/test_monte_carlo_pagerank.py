"""Tests for Monte Carlo estimators, PageRank and the ProximityMatrix wrapper."""

import numpy as np
import pytest

from repro.exceptions import InvalidParameterError
from repro.graph import ring_graph, transition_matrix
from repro.rwr import (
    ProximityMatrix,
    mc_complete_path,
    mc_end_point,
    pagerank,
    personalized_pagerank,
    proximity_column,
    top_k_of_column,
)


class TestMonteCarlo:
    def test_end_point_is_distribution(self, small_transition):
        estimate = mc_end_point(small_transition, 0, walks=500, seed=1)
        assert estimate.sum() == pytest.approx(1.0, abs=1e-9)
        assert estimate.min() >= 0.0

    def test_complete_path_close_to_exact(self, small_transition):
        exact = proximity_column(small_transition, 2)
        estimate = mc_complete_path(small_transition, 2, walks=4000, seed=3)
        # Top node should agree and L1 error should be modest.
        assert int(np.argmax(estimate)) == int(np.argmax(exact))
        assert np.abs(estimate - exact).sum() < 0.35

    def test_end_point_reproducible(self, small_transition):
        a = mc_end_point(small_transition, 1, walks=200, seed=9)
        b = mc_end_point(small_transition, 1, walks=200, seed=9)
        np.testing.assert_array_equal(a, b)

    def test_more_walks_reduce_error(self, small_transition):
        exact = proximity_column(small_transition, 4)
        few = mc_complete_path(small_transition, 4, walks=200, seed=5)
        many = mc_complete_path(small_transition, 4, walks=8000, seed=5)
        assert np.abs(many - exact).sum() <= np.abs(few - exact).sum() + 0.05

    def test_invalid_walks_rejected(self, small_transition):
        with pytest.raises(InvalidParameterError):
            mc_end_point(small_transition, 0, walks=0)


class TestPageRank:
    def test_pagerank_is_distribution(self, small_transition):
        ranks = pagerank(small_transition)
        assert ranks.sum() == pytest.approx(1.0, abs=1e-8)
        assert ranks.min() >= 0.0

    def test_personalized_equals_proximity_vector(self, small_transition):
        n = small_transition.shape[0]
        preference = np.zeros(n)
        preference[3] = 1.0
        ppr = personalized_pagerank(small_transition, preference)
        np.testing.assert_allclose(ppr, proximity_column(small_transition, 3), atol=1e-8)

    def test_pagerank_uniform_on_ring(self):
        matrix = transition_matrix(ring_graph(8))
        ranks = pagerank(matrix)
        np.testing.assert_allclose(ranks, np.full(8, 1 / 8), atol=1e-8)

    def test_preference_normalised(self, small_transition):
        n = small_transition.shape[0]
        preference = np.zeros(n)
        preference[0] = 10.0  # un-normalised on purpose
        ppr = personalized_pagerank(small_transition, preference)
        np.testing.assert_allclose(ppr, proximity_column(small_transition, 0), atol=1e-8)

    def test_rejects_negative_preference(self, small_transition):
        n = small_transition.shape[0]
        preference = np.zeros(n)
        preference[0] = -1.0
        with pytest.raises(InvalidParameterError):
            personalized_pagerank(small_transition, preference)

    def test_rejects_zero_preference(self, small_transition):
        with pytest.raises(InvalidParameterError):
            personalized_pagerank(small_transition, np.zeros(small_transition.shape[0]))

    def test_rejects_wrong_length(self, small_transition):
        with pytest.raises(InvalidParameterError):
            personalized_pagerank(small_transition, np.ones(3))


class TestProximityMatrixWrapper:
    def test_reverse_top_k_matches_definition(self, small_transition, small_exact_matrix):
        wrapper = ProximityMatrix(small_exact_matrix)
        k = 3
        answer = set(wrapper.reverse_top_k(5, k).tolist())
        for node in range(wrapper.n_nodes):
            column = small_exact_matrix[:, node]
            kth = np.sort(column)[-k]
            if column[5] > kth + 1e-12:
                assert node in answer

    def test_top_k_descending(self, small_exact_matrix):
        wrapper = ProximityMatrix(small_exact_matrix)
        _, values = wrapper.top_k(0, 5)
        assert all(values[i] >= values[i + 1] for i in range(4))

    def test_proximity_accessor(self, small_exact_matrix):
        wrapper = ProximityMatrix(small_exact_matrix)
        assert wrapper.proximity(2, 3) == pytest.approx(small_exact_matrix[3, 2])

    def test_kth_value(self, small_exact_matrix):
        wrapper = ProximityMatrix(small_exact_matrix)
        _, values = wrapper.top_k(1, 4)
        assert wrapper.kth_value(1, 4) == pytest.approx(values[-1])

    def test_rejects_non_square(self):
        with pytest.raises(ValueError):
            ProximityMatrix(np.ones((2, 3)))

    def test_top_k_of_column_helper(self):
        indices, values = top_k_of_column(np.array([0.1, 0.4, 0.2]), 2)
        assert indices.tolist() == [1, 2]
