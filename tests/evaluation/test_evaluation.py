"""Tests for evaluation metrics, table formatting and the experiment harness."""

import pytest

from repro.core import IndexParams
from repro.evaluation import (
    figure5_query_time,
    figure6_pruning_power,
    figure7_refinement_effect,
    figure8_cumulative_cost,
    figure9_rounding_effect,
    format_series,
    format_table,
    jaccard_similarity,
    precision_at_k,
    result_overlap,
    spam_detection_stats,
    table2_index_construction,
    table3_author_popularity,
)
from repro.evaluation.metrics import mean_and_std
from repro.graph import copying_web_graph


TINY_PARAMS = IndexParams(capacity=8, hub_budget=3)


@pytest.fixture(scope="module")
def tiny_graph():
    return copying_web_graph(50, out_degree=4, seed=21)


class TestMetrics:
    def test_jaccard_identical(self):
        assert jaccard_similarity([1, 2, 3], [3, 2, 1]) == 1.0

    def test_jaccard_disjoint(self):
        assert jaccard_similarity([1], [2]) == 0.0

    def test_jaccard_both_empty(self):
        assert jaccard_similarity([], []) == 1.0

    def test_jaccard_partial(self):
        assert jaccard_similarity([1, 2], [2, 3]) == pytest.approx(1 / 3)

    def test_result_overlap(self):
        assert result_overlap([1, 2], [2, 3]) == pytest.approx(0.5)
        assert result_overlap([], [1]) == 1.0

    def test_precision_at_k(self):
        assert precision_at_k([1, 2, 3, 4], {2, 4}, 2) == pytest.approx(0.5)
        assert precision_at_k([], {1}, 3) == 0.0

    def test_precision_rejects_bad_k(self):
        with pytest.raises(ValueError):
            precision_at_k([1], {1}, 0)

    def test_mean_and_std(self):
        mean, std = mean_and_std([1.0, 3.0])
        assert mean == pytest.approx(2.0)
        assert std == pytest.approx(1.0)
        assert mean_and_std([]) == (0.0, 0.0)


class TestFormatting:
    def test_format_table_alignment(self):
        text = format_table(["a", "bb"], [[1, 2.5], [10, 3.25]], title="T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "a" in lines[1] and "bb" in lines[1]
        assert len(lines) == 5

    def test_format_series_columns(self):
        text = format_series("k", {"s1": [1.0, 2.0], "s2": [3.0, 4.0]}, [5, 10])
        assert "s1" in text and "s2" in text
        assert "5" in text and "10" in text

    def test_format_table_handles_strings_and_bools(self):
        text = format_table(["x"], [["hello"], [True]])
        assert "hello" in text and "True" in text


class TestExperiments:
    def test_table2(self, tiny_graph):
        result = table2_index_construction(
            tiny_graph, hub_budgets=(2, 3), params=TINY_PARAMS, graph_name="tiny"
        )
        assert result.name == "table2"
        assert len(result.data["rows"]) == 2
        assert result.data["brute_force"]["seconds"] > 0
        for row in result.data["rows"]:
            assert row["actual_bytes"] > 0
            assert row["seconds"] >= 0
        assert "Table 2" in result.text

    def test_figure5(self, tiny_graph):
        result = figure5_query_time(
            tiny_graph, k_values=(2, 4), n_queries=4, params=TINY_PARAMS
        )
        assert result.data["k"] == [2, 4]
        assert len(result.data["update_seconds"]) == 2
        assert all(value > 0 for value in result.data["update_seconds"])

    def test_figure6(self, tiny_graph):
        result = figure6_pruning_power(
            tiny_graph, k_values=(2, 4), n_queries=4, params=TINY_PARAMS
        )
        assert len(result.data["candidates"]) == 2
        # Hits can never exceed candidates; results are at least the hits count
        for cand, hits in zip(result.data["candidates"], result.data["hits"]):
            assert hits <= cand + 1e-9

    def test_figure7(self, tiny_graph):
        result = figure7_refinement_effect(
            tiny_graph, k=4, n_queries=8, params=TINY_PARAMS
        )
        assert len(result.data["update_seconds"]) == 8
        assert len(result.data["no_update_seconds"]) == 8
        # With updates the total refinement work is never larger than without.
        assert sum(result.data["update_refinements"]) <= sum(
            result.data["no_update_refinements"]
        ) + 1e-9

    def test_figure8(self, tiny_graph):
        from repro.workloads import uniform_query_workload

        workload = uniform_query_workload(tiny_graph, 6, k=3, seed=1)
        result = figure8_cumulative_cost(
            tiny_graph, k=3, params=TINY_PARAMS, workload=workload
        )
        ours = result.data["ours"]
        assert len(ours) == 6
        assert all(ours[i] <= ours[i + 1] for i in range(len(ours) - 1))
        # Our offline phase must be cheaper than computing the full matrix.
        assert result.data["offline"]["ours"] < result.data["offline"]["ibf"] * 5

    def test_figure9(self, tiny_graph):
        result = figure9_rounding_effect(
            tiny_graph,
            k_values=(2, 4),
            rounding_thresholds=(1e-3, 1e-6),
            n_queries=4,
            params=TINY_PARAMS,
        )
        for values in result.data["similarity"].values():
            assert all(0.0 <= value <= 1.0 for value in values)
        # The finest threshold must give (near-)identical results.
        assert min(result.data["similarity"][1e-6]) >= 0.99

    def test_table3(self, weighted_coauthor_graph):
        graph, _ = weighted_coauthor_graph
        result = table3_author_popularity(graph, k=3, top=5, params=TINY_PARAMS)
        rows = result.data["rows"]
        assert len(rows) == 5
        sizes = [row["reverse_top_k_size"] for row in rows]
        assert sizes == sorted(sizes, reverse=True)

    def test_spam_stats(self, labelled_spam_graph):
        graph, labels = labelled_spam_graph
        result = spam_detection_stats(
            graph, labels, k=3, max_queries_per_class=6, params=TINY_PARAMS
        )
        assert result.data["spam_queries"] == 6
        assert (
            result.data["mean_spam_ratio_for_spam"]
            > result.data["mean_spam_ratio_for_normal"]
        )
