"""Property test: the vectorized scan is equivalent to the seed per-node scan.

The vectorized engine must return *identical* result sets and identical
``QueryStatistics`` counters to the reference scalar scan (the seed's
per-node Algorithm 4 loop) — and both must agree with the brute-force
oracle ``brute_force_reverse_topk`` up to numerical ties — across random
graphs, both ``update_index`` modes, and the extreme depths ``k = 1`` and
``k = K`` (the index capacity).
"""

import copy

from hypothesis import given, settings
from hypothesis import strategies as st
import numpy as np
import scipy.sparse as sp

from repro.core import (
    IndexParams,
    ReverseTopKEngine,
    brute_force_reverse_topk,
    build_index,
)
from repro.graph import DiGraph, transition_matrix

#: Statistics counters that must match exactly between the two scan modes.
_COUNTERS = (
    "n_results",
    "n_candidates",
    "n_hits",
    "n_exact_shortcut",
    "n_pruned_immediately",
    "n_refinement_iterations",
    "n_refined_nodes",
    "n_exact_fallbacks",
    "pmpn_iterations",
)


@st.composite
def engine_cases(draw):
    """A random small graph plus query node, update mode, and hub budget."""
    n = draw(st.integers(min_value=4, max_value=16))
    density = draw(st.floats(min_value=0.15, max_value=0.5))
    seed = draw(st.integers(min_value=0, max_value=10_000))
    rng = np.random.default_rng(seed)
    mask = rng.random((n, n)) < density
    np.fill_diagonal(mask, False)
    if not mask.any():
        mask[0, 1] = True
    graph = DiGraph(sp.csr_matrix(mask.astype(float)))
    query = draw(st.integers(min_value=0, max_value=n - 1))
    hub_budget = draw(st.integers(min_value=0, max_value=3))
    update_index = draw(st.booleans())
    return graph, query, hub_budget, update_index


class TestEngineEquivalence:
    @given(engine_cases())
    @settings(max_examples=25, deadline=None)
    def test_vectorized_scan_matches_scalar_scan(self, case):
        graph, query, hub_budget, update_index = case
        matrix = transition_matrix(graph)
        params = IndexParams(
            capacity=min(8, graph.n_nodes), hub_budget=hub_budget
        ).for_graph(graph.n_nodes)
        reference = build_index(graph, params, transition=matrix)

        for k in (1, params.capacity):
            vectorized = ReverseTopKEngine(matrix, copy.deepcopy(reference))
            scalar = ReverseTopKEngine(matrix, copy.deepcopy(reference))
            result_vec = vectorized.query(
                query, k, update_index=update_index, scan_mode="vectorized"
            )
            result_sca = scalar.query(
                query, k, update_index=update_index, scan_mode="scalar"
            )
            np.testing.assert_array_equal(result_vec.nodes, result_sca.nodes)
            for counter in _COUNTERS:
                assert getattr(result_vec.statistics, counter) == getattr(
                    result_sca.statistics, counter
                ), counter
            # Update-mode refinements must leave bit-identical index state.
            np.testing.assert_array_equal(
                vectorized.index.lower_bound_matrix(),
                scalar.index.lower_bound_matrix(),
            )
            np.testing.assert_array_equal(
                vectorized.index.columns.residual_mass,
                scalar.index.columns.residual_mass,
            )
            np.testing.assert_array_equal(
                vectorized.index.columns.is_exact, scalar.index.columns.is_exact
            )

    @given(engine_cases())
    @settings(max_examples=15, deadline=None)
    def test_vectorized_scan_matches_brute_force(self, case):
        graph, query, hub_budget, update_index = case
        matrix = transition_matrix(graph)
        params = IndexParams(
            capacity=min(8, graph.n_nodes), hub_budget=hub_budget, rounding_threshold=0.0
        ).for_graph(graph.n_nodes)
        engine = ReverseTopKEngine.build(graph, params, transition=matrix)

        from repro.rwr import ProximityLU

        exact = ProximityLU(matrix).matrix()
        for k in (1, params.capacity):
            result = engine.query(query, k, update_index=update_index)
            oracle = brute_force_reverse_topk(matrix, query, k)
            # Disagreements are only permitted on numerically tied nodes.
            for node in {int(v) for v in result.nodes} ^ {int(v) for v in oracle}:
                column = exact[:, node]
                kth = np.sort(column)[-k]
                assert abs(column[query] - kth) <= 1e-8, (
                    f"node {node} disagrees without a tie (k={k})"
                )
