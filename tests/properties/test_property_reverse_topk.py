"""End-to-end property test: the engine agrees with the exact oracle on random graphs."""

from hypothesis import given, settings
from hypothesis import strategies as st
import numpy as np
import scipy.sparse as sp

from repro.core import IndexParams, ReverseTopKEngine
from repro.graph import DiGraph, transition_matrix
from repro.rwr import ProximityLU


@st.composite
def graph_query_cases(draw):
    """A random small graph plus a query node and depth k."""
    n = draw(st.integers(min_value=4, max_value=18))
    density = draw(st.floats(min_value=0.15, max_value=0.5))
    seed = draw(st.integers(min_value=0, max_value=10_000))
    rng = np.random.default_rng(seed)
    mask = rng.random((n, n)) < density
    np.fill_diagonal(mask, False)
    if not mask.any():
        mask[0, 1] = True
    graph = DiGraph(sp.csr_matrix(mask.astype(float)))
    query = draw(st.integers(min_value=0, max_value=n - 1))
    k = draw(st.integers(min_value=1, max_value=min(5, n)))
    hub_budget = draw(st.integers(min_value=0, max_value=3))
    return graph, query, k, hub_budget


class TestReverseTopKAgainstOracle:
    @given(graph_query_cases())
    @settings(max_examples=30, deadline=None)
    def test_engine_matches_exact_oracle(self, case):
        graph, query, k, hub_budget = case
        matrix = transition_matrix(graph)
        exact = ProximityLU(matrix).matrix()
        params = IndexParams(
            capacity=min(8, graph.n_nodes), hub_budget=hub_budget, rounding_threshold=0.0
        ).for_graph(graph.n_nodes)
        engine = ReverseTopKEngine.build(graph, params, transition=matrix)
        result = set(engine.query(query, k).nodes.tolist())

        for node in range(graph.n_nodes):
            column = exact[:, node]
            kth = np.sort(column)[-k]
            value = column[query]
            if value > kth + 1e-9:
                assert node in result
            elif value < kth - 1e-9:
                assert node not in result

    @given(graph_query_cases())
    @settings(max_examples=15, deadline=None)
    def test_update_and_no_update_agree(self, case):
        graph, query, k, hub_budget = case
        matrix = transition_matrix(graph)
        params = IndexParams(
            capacity=min(8, graph.n_nodes), hub_budget=hub_budget, rounding_threshold=0.0
        ).for_graph(graph.n_nodes)
        with_update = ReverseTopKEngine.build(graph, params, transition=matrix)
        without_update = ReverseTopKEngine.build(graph, params, transition=matrix)
        a = set(with_update.query(query, k, update_index=True).nodes.tolist())
        b = set(without_update.query(query, k, update_index=False).nodes.tolist())
        assert a == b
