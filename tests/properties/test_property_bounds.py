"""Property-based tests (hypothesis) for the staircase upper bound (Algorithm 3)."""

from hypothesis import given, settings
from hypothesis import strategies as st
import numpy as np

from repro.core.bounds import kth_upper_bound, staircase_levels


@st.composite
def descending_vectors(draw, min_size: int = 1, max_size: int = 12):
    """A descending non-negative vector plus a k within its length."""
    size = draw(st.integers(min_value=min_size, max_value=max_size))
    values = draw(
        st.lists(
            st.floats(min_value=0.0, max_value=1.0, allow_nan=False),
            min_size=size,
            max_size=size,
        )
    )
    vector = np.sort(np.asarray(values))[::-1]
    k = draw(st.integers(min_value=1, max_value=size))
    return vector, k


class TestUpperBoundProperties:
    @given(descending_vectors(), st.floats(min_value=0.0, max_value=2.0, allow_nan=False))
    @settings(max_examples=200, deadline=None)
    def test_upper_bound_at_least_kth_lower_bound(self, vector_and_k, residual):
        vector, k = vector_and_k
        bound = kth_upper_bound(vector, residual, k)
        assert bound >= vector[k - 1] - 1e-12

    @given(descending_vectors(), st.floats(min_value=0.0, max_value=2.0, allow_nan=False))
    @settings(max_examples=200, deadline=None)
    def test_zero_residual_is_tight(self, vector_and_k, residual):
        vector, k = vector_and_k
        assert kth_upper_bound(vector, 0.0, k) == vector[k - 1]

    @given(
        descending_vectors(),
        st.floats(min_value=0.0, max_value=1.0, allow_nan=False),
        st.floats(min_value=0.0, max_value=1.0, allow_nan=False),
    )
    @settings(max_examples=200, deadline=None)
    def test_monotone_in_residual(self, vector_and_k, residual_a, residual_b):
        vector, k = vector_and_k
        low, high = sorted((residual_a, residual_b))
        assert kth_upper_bound(vector, low, k) <= kth_upper_bound(vector, high, k) + 1e-12

    @given(descending_vectors(), st.floats(min_value=0.0, max_value=2.0, allow_nan=False))
    @settings(max_examples=200, deadline=None)
    def test_bound_dominates_any_feasible_completion(self, vector_and_k, residual):
        """Distribute the residual adversarially (greedily onto the top-k) — the
        resulting k-th value never exceeds the bound."""
        vector, k = vector_and_k
        bound = kth_upper_bound(vector, residual, k)
        # Water-filling simulation: pour residual onto the k largest entries.
        top = vector[:k].astype(float).copy()
        remaining = residual
        for _ in range(1000):
            if remaining <= 1e-15:
                break
            lowest = np.argmin(top)
            gap_candidates = top[top > top[lowest] + 1e-15]
            step = (
                min(remaining, gap_candidates.min() - top[lowest])
                if gap_candidates.size
                else remaining
            )
            top[lowest] += step
            remaining -= step
        achieved_kth = top.min()
        assert achieved_kth <= bound + 1e-9

    @given(descending_vectors(min_size=2))
    @settings(max_examples=100, deadline=None)
    def test_staircase_levels_monotone(self, vector_and_k):
        vector, k = vector_and_k
        levels = staircase_levels(vector, k)
        assert levels[0] == 0.0
        assert np.all(np.diff(levels) >= -1e-12)
