"""Property test: the serving pipeline never changes an answer.

For random small graphs and random request streams (duplicates encouraged so
cache hits, in-flight dedup and batching all fire), every result the
:class:`ReverseTopKService` returns — cached, deduplicated, batched, or
fanned across thread workers — must be bit-identical (result nodes *and*
proximity vectors) to evaluating the same ``(query, k)`` directly with
``engine.query(update_index=False)``.  And persisting a refinement through
the index must invalidate prior cache entries (the version key).
"""

from hypothesis import given, settings
from hypothesis import strategies as st
import numpy as np
import scipy.sparse as sp

from repro.core import IndexParams, ReverseTopKEngine, build_index
from repro.graph import DiGraph, transition_matrix
from repro.serving import ReverseTopKService, ServiceConfig


@st.composite
def service_cases(draw):
    """A random small graph plus a duplicate-heavy request stream."""
    n = draw(st.integers(min_value=4, max_value=14))
    density = draw(st.floats(min_value=0.15, max_value=0.5))
    seed = draw(st.integers(min_value=0, max_value=10_000))
    rng = np.random.default_rng(seed)
    mask = rng.random((n, n)) < density
    np.fill_diagonal(mask, False)
    if not mask.any():
        mask[0, 1] = True
    graph = DiGraph(sp.csr_matrix(mask.astype(float)))
    capacity = min(6, n)
    # Few distinct queries + many requests => plenty of repeats.
    pool = draw(
        st.lists(
            st.integers(min_value=0, max_value=n - 1), min_size=1, max_size=3
        )
    )
    requests = draw(
        st.lists(
            st.tuples(
                st.sampled_from(pool), st.integers(min_value=1, max_value=capacity)
            ),
            min_size=1,
            max_size=10,
        )
    )
    n_workers = draw(st.sampled_from([0, 2]))
    cache_capacity = draw(st.sampled_from([0, 64]))
    return graph, capacity, requests, n_workers, cache_capacity


class TestServiceEquivalence:
    @given(service_cases())
    @settings(max_examples=25, deadline=None)
    def test_served_answers_bit_identical_to_direct_queries(self, case):
        graph, capacity, requests, n_workers, cache_capacity = case
        matrix = transition_matrix(graph)
        params = IndexParams(capacity=capacity, hub_budget=1).for_graph(graph.n_nodes)
        index = build_index(graph, params, transition=matrix)
        engine = ReverseTopKEngine(matrix, index)
        config = ServiceConfig(
            cache_capacity=cache_capacity,
            max_batch_size=3,
            n_workers=n_workers,
            backend="thread",
        )
        with ReverseTopKService(engine, config) as service:
            served = service.serve(requests)
            # Serve twice: the second pass exercises the cache-hit path.
            served_again = service.serve(requests)
        for (query, k), first, second in zip(requests, served, served_again):
            direct = engine.query(query, k, update_index=False)
            for result in (first, second):
                np.testing.assert_array_equal(result.nodes, direct.nodes)
                np.testing.assert_array_equal(
                    result.proximities_to_query, direct.proximities_to_query
                )
                assert result.query == query and result.k == k

    @given(service_cases())
    @settings(max_examples=10, deadline=None)
    def test_index_mutation_invalidates_cache_entries(self, case):
        graph, capacity, requests, _, _ = case
        matrix = transition_matrix(graph)
        params = IndexParams(capacity=capacity, hub_budget=1).for_graph(graph.n_nodes)
        index = build_index(graph, params, transition=matrix)
        engine = ReverseTopKEngine(matrix, index)
        with ReverseTopKService(engine, ServiceConfig(cache_capacity=64)) as service:
            service.serve(requests)
            computed_before = service.metrics().n_engine_queries
            # An update-mode pass over every node guarantees at least one
            # persisted refinement on a fresh index unless it is already
            # fully exact; force a bump in that case to model any write-back.
            for query in range(graph.n_nodes):
                service.refine(query, capacity)
            if engine.index.version == 0:
                engine.index.sync_state(0)
            service.serve(requests)
            metrics = service.metrics()
        # Every unique request was recomputed after the version bump: the
        # engine-query counter grew by the number of unique (query, k) pairs.
        unique = len({(int(q), int(k)) for q, k in requests})
        assert metrics.n_engine_queries == computed_before + unique
