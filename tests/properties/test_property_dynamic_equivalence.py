"""Property test: delta maintenance never diverges from a from-scratch build.

For random small graphs and random sequences of update batches (insertions,
deletions, weight changes — applied through the full
``DynamicGraph.drain()`` → ``IndexMaintainer.apply()`` pipeline), the
maintained engine must stay **bit-identical** to an engine rebuilt from
scratch on the final graph under the maintained hub set: per-node BCA
states, the columnar views, and every reverse top-k answer including its
statistics counters.  Under the ``"reselect"`` hub policy that hub set is
exactly what a default build selects, so the equivalence is unconditional.
Whether any given sequence rides the incremental path, re-materializes hub
expansions, or trips the full-rebuild escape hatch is irrelevant — the
invariant holds across all of them, which is exactly why the escape
hatches are safe.

A second property covers the serving layer: answers served through the
dynamic façade (cache + batching) across updates match direct queries on a
fresh engine, and effective updates retire cached answers.
"""

from hypothesis import given, settings
from hypothesis import strategies as st
import numpy as np
import scipy.sparse as sp

from repro.core import IndexParams, ReverseTopKEngine, build_index
from repro.dynamic import DynamicGraph, DynamicReverseTopKService, IndexMaintainer
from repro.graph import DiGraph, transition_matrix
from repro.serving import ServiceConfig

#: Counter fields of QueryStatistics that must match bit-for-bit (timings
#: excluded — they are wall-clock measurements, not answers).
COUNTER_FIELDS = (
    "n_results",
    "n_candidates",
    "n_hits",
    "n_exact_shortcut",
    "n_pruned_immediately",
    "n_refinement_iterations",
    "n_refined_nodes",
    "pmpn_iterations",
    "n_exact_fallbacks",
)


@st.composite
def dynamic_cases(draw):
    """A random small graph plus a random valid update-batch sequence."""
    n = draw(st.integers(min_value=4, max_value=12))
    density = draw(st.floats(min_value=0.15, max_value=0.45))
    seed = draw(st.integers(min_value=0, max_value=10_000))
    rng = np.random.default_rng(seed)
    mask = rng.random((n, n)) < density
    np.fill_diagonal(mask, False)
    if not mask.any():
        mask[0, 1] = True
    graph = DiGraph(sp.csr_matrix(mask.astype(float)))
    capacity = min(5, n)
    hub_budget = draw(st.integers(min_value=0, max_value=2))
    hub_policy = draw(st.sampled_from(["pinned", "reselect"]))
    rebuild_ratio = draw(st.sampled_from([0.05, 0.5, 1.0]))
    n_batches = draw(st.integers(min_value=1, max_value=3))
    batch_sizes = draw(
        st.lists(
            st.integers(min_value=1, max_value=4),
            min_size=n_batches,
            max_size=n_batches,
        )
    )
    op_seed = draw(st.integers(min_value=0, max_value=10_000))
    return graph, capacity, hub_budget, hub_policy, rebuild_ratio, batch_sizes, op_seed


def random_batch(dynamic: DynamicGraph, rng, size: int):
    """Apply up to ``size`` random valid mutations; return them as updates."""
    from repro.dynamic import GraphUpdate

    n = dynamic.n_nodes
    updates = []
    for _ in range(size * 8):
        if len(updates) >= size:
            break
        roll = rng.random()
        u = int(rng.integers(0, n))
        v = int(rng.integers(0, n))
        if roll < 0.45:
            if u != v and not dynamic.has_edge(u, v):
                updates.append(GraphUpdate.add(u, v, float(rng.uniform(0.5, 2.0))))
                dynamic.apply_update(updates[-1])
        elif roll < 0.8:
            if dynamic.has_edge(u, v) and dynamic.n_edges > 1:
                updates.append(GraphUpdate.remove(u, v))
                dynamic.apply_update(updates[-1])
        else:
            if dynamic.has_edge(u, v):
                updates.append(
                    GraphUpdate.set_weight(u, v, float(rng.uniform(0.5, 2.0)))
                )
                dynamic.apply_update(updates[-1])
    return updates


class TestDynamicEquivalence:
    @given(dynamic_cases())
    @settings(max_examples=30, deadline=None)
    def test_maintained_index_bit_identical_to_scratch_build(self, case):
        graph, capacity, hub_budget, hub_policy, rebuild_ratio, batch_sizes, op_seed = case
        params = IndexParams(capacity=capacity, hub_budget=hub_budget).for_graph(
            graph.n_nodes
        )
        matrix = transition_matrix(graph)
        engine = ReverseTopKEngine(
            matrix, build_index(graph, params, transition=matrix)
        )
        maintainer = IndexMaintainer(
            engine, rebuild_ratio=rebuild_ratio, hub_policy=hub_policy
        )
        dynamic = DynamicGraph(graph)
        rng = np.random.default_rng(op_seed)
        for size in batch_sizes:
            random_batch(dynamic, rng, size)
            new_graph, touched = dynamic.drain()
            maintainer.apply(new_graph, touched)

        # The equivalence target: a from-scratch build under the maintained
        # hub set.  Under "reselect" that set *is* the default selection, so
        # the comparison is against a plain default build.
        final_matrix = transition_matrix(dynamic.base)
        fresh = ReverseTopKEngine(
            final_matrix,
            build_index(
                dynamic.base,
                params,
                hubs=engine.index.hubs,
                transition=final_matrix,
            ),
        )
        if hub_policy == "reselect":
            default = ReverseTopKEngine.build(dynamic.base, params)
            assert engine.index.hubs.nodes == default.index.hubs.nodes

        # 1. state-level bit identity
        assert engine.index.hubs.nodes == fresh.index.hubs.nodes
        for (node, kept), (_, rebuilt) in zip(
            engine.index.states(), fresh.index.states()
        ):
            assert kept.residual == rebuilt.residual, node
            assert kept.retained == rebuilt.retained, node
            assert kept.hub_ink == rebuilt.hub_ink, node
            assert kept.iterations == rebuilt.iterations, node
            np.testing.assert_array_equal(kept.lower_bounds, rebuilt.lower_bounds)

        # 2. columnar-view bit identity
        np.testing.assert_array_equal(
            engine.index.columns.lower, fresh.index.columns.lower
        )
        np.testing.assert_array_equal(
            engine.index.columns.residual_mass,
            fresh.index.columns.residual_mass,
        )
        np.testing.assert_array_equal(
            engine.index.columns.is_exact, fresh.index.columns.is_exact
        )

        # 3. every answer and its statistics counters, at every depth probed
        k = int(np.random.default_rng(op_seed + 1).integers(1, capacity + 1))
        for query in range(graph.n_nodes):
            maintained = engine.query(query, k, update_index=False)
            scratch = fresh.query(query, k, update_index=False)
            np.testing.assert_array_equal(maintained.nodes, scratch.nodes)
            np.testing.assert_array_equal(
                maintained.proximities_to_query, scratch.proximities_to_query
            )
            for field in COUNTER_FIELDS:
                assert getattr(maintained.statistics, field) == getattr(
                    scratch.statistics, field
                ), (query, field)

    @given(dynamic_cases())
    @settings(max_examples=15, deadline=None)
    def test_served_answers_track_updates(self, case):
        graph, capacity, hub_budget, hub_policy, rebuild_ratio, batch_sizes, op_seed = case
        params = IndexParams(capacity=capacity, hub_budget=hub_budget).for_graph(
            graph.n_nodes
        )
        matrix = transition_matrix(graph)
        engine = ReverseTopKEngine(
            matrix, build_index(graph, params, transition=matrix)
        )
        maintainer = IndexMaintainer(
            engine, rebuild_ratio=rebuild_ratio, hub_policy=hub_policy
        )
        config = ServiceConfig(cache_capacity=64, max_batch_size=4, n_workers=0)
        rng = np.random.default_rng(op_seed)
        requests = [
            (int(q), int(k))
            for q, k in zip(
                rng.integers(0, graph.n_nodes, size=6),
                rng.integers(1, capacity + 1, size=6),
            )
        ]
        with DynamicReverseTopKService(
            engine, config, graph=graph, maintainer=maintainer
        ) as service:
            service.serve(requests)  # populate the cache pre-update
            for size in batch_sizes:
                # Generate the batch against a scratch overlay of the same
                # base state, then push it through the real update path.
                scratch = DynamicGraph(service.graph.base)
                updates = random_batch(scratch, rng, size)
                if updates:
                    service.apply_updates(updates)
            served = service.serve(requests)
            final_matrix = transition_matrix(service.graph.base)
            reference = ReverseTopKEngine(
                final_matrix,
                build_index(
                    service.graph.base,
                    params,
                    hubs=service.engine.index.hubs,
                    transition=final_matrix,
                ),
            )
            for (query, k), result in zip(requests, served):
                direct = reference.query(query, k, update_index=False)
                np.testing.assert_array_equal(result.nodes, direct.nodes)
                np.testing.assert_array_equal(
                    result.proximities_to_query, direct.proximities_to_query
                )
