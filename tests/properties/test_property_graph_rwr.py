"""Property-based tests for graph/transition invariants and RWR propositions."""

from hypothesis import given, settings
from hypothesis import strategies as st
import numpy as np
import scipy.sparse as sp

from repro.core.config import IndexParams
from repro.core.lbi import bca_iteration, initial_node_state
from repro.graph import DiGraph, is_column_stochastic, transition_matrix, weighted_transition_matrix
from repro.rwr import proximity_column, push_proximity_vector
from repro.utils.sparsetools import dense_top_k


@st.composite
def random_digraphs(draw, max_nodes: int = 14):
    """Small random directed graphs with at least one edge."""
    n = draw(st.integers(min_value=2, max_value=max_nodes))
    density = draw(st.floats(min_value=0.1, max_value=0.6))
    seed = draw(st.integers(min_value=0, max_value=10_000))
    rng = np.random.default_rng(seed)
    mask = rng.random((n, n)) < density
    np.fill_diagonal(mask, False)
    if not mask.any():
        mask[0, 1] = True
    weights = np.where(mask, rng.integers(1, 5, size=(n, n)).astype(float), 0.0)
    return DiGraph(sp.csr_matrix(weights))


class TestTransitionProperties:
    @given(random_digraphs())
    @settings(max_examples=60, deadline=None)
    def test_transition_always_column_stochastic(self, graph):
        assert is_column_stochastic(transition_matrix(graph))

    @given(random_digraphs())
    @settings(max_examples=60, deadline=None)
    def test_weighted_transition_always_column_stochastic(self, graph):
        assert is_column_stochastic(weighted_transition_matrix(graph))

    @given(random_digraphs())
    @settings(max_examples=40, deadline=None)
    def test_proximity_vector_is_distribution(self, graph):
        matrix = transition_matrix(graph)
        vector = proximity_column(matrix, 0, tolerance=1e-8)
        assert vector.min() >= -1e-12
        assert abs(vector.sum() - 1.0) < 1e-6


class TestBCALowerBoundProperties:
    @given(random_digraphs(), st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=40, deadline=None)
    def test_push_retained_is_lower_bound(self, graph, seed):
        matrix = transition_matrix(graph)
        source = seed % graph.n_nodes
        exact = proximity_column(matrix, source, tolerance=1e-9)
        partial = push_proximity_vector(matrix, source, propagation_threshold=1e-3)
        assert np.all(partial.retained <= exact + 1e-8)

    @given(random_digraphs())
    @settings(max_examples=40, deadline=None)
    def test_proposition_1_and_2_monotone_lower_bounds(self, graph):
        """Each batched BCA iteration increases every retained value and the
        k-th largest retained value never exceeds the exact k-th value."""
        matrix = sp.csc_matrix(transition_matrix(graph))
        params = IndexParams(capacity=min(5, graph.n_nodes), hub_budget=0).for_graph(
            graph.n_nodes
        )
        hub_mask = np.zeros(graph.n_nodes, dtype=bool)
        state = initial_node_state(0, False)
        exact = proximity_column(sp.csc_matrix(matrix), 0, tolerance=1e-9)
        k = min(3, graph.n_nodes)
        exact_kth = np.sort(exact)[-k]
        previous_kth = 0.0
        for _ in range(8):
            progressed = bca_iteration(state, matrix, hub_mask, params)
            retained = np.zeros(graph.n_nodes)
            for node, value in state.retained.items():
                retained[node] = value
            _, top_values = dense_top_k(retained, k)
            current_kth = top_values[-1] if top_values.size == k else 0.0
            assert current_kth >= previous_kth - 1e-12  # Proposition 1 (monotone)
            assert current_kth <= exact_kth + 1e-9  # Proposition 2 (lower bound)
            previous_kth = current_kth
            if not progressed:
                break

    @given(random_digraphs())
    @settings(max_examples=40, deadline=None)
    def test_bca_iteration_conserves_ink(self, graph):
        matrix = sp.csc_matrix(transition_matrix(graph))
        params = IndexParams(capacity=min(5, graph.n_nodes), hub_budget=0).for_graph(
            graph.n_nodes
        )
        hub_mask = np.zeros(graph.n_nodes, dtype=bool)
        state = initial_node_state(0, False)
        for _ in range(6):
            bca_iteration(state, matrix, hub_mask, params)
            total = (
                sum(state.retained.values())
                + sum(state.hub_ink.values())
                + state.residual_mass
            )
            assert abs(total - 1.0) < 1e-9
