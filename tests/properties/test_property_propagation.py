"""Property tests for the propagation-kernel layer (ISSUE 4).

Two guarantees under random graphs and parameters:

1. the vectorized backend's states reconstruct proximity vectors within
   ``1e-12`` of the scalar backend's, with identical top-K *node sets*
   (modulo genuinely tied boundary values);
2. the scalar backend is bit-identical to the seed implementation — states,
   lower bounds and query statistics — which it preserves verbatim as the
   per-node primitives it is built from.
"""

from hypothesis import given, settings
from hypothesis import strategies as st
import numpy as np
import pytest
import scipy.sparse as sp

from repro.core import (
    IndexParams,
    PropagationKernel,
    ReverseTopKEngine,
    build_index,
    numba_available,
)
from repro.core.lbi import _compute_hub_matrix, default_hub_selection
from repro.core.propagation import (
    _HubExpansion,
    initial_node_state,
    materialize_lower_bounds,
    run_node_bca,
)
from repro.graph import DiGraph, transition_matrix


@st.composite
def random_digraphs(draw, max_nodes: int = 14):
    """Small random directed graphs with at least one edge."""
    n = draw(st.integers(min_value=2, max_value=max_nodes))
    density = draw(st.floats(min_value=0.1, max_value=0.6))
    seed = draw(st.integers(min_value=0, max_value=10_000))
    rng = np.random.default_rng(seed)
    mask = rng.random((n, n)) < density
    np.fill_diagonal(mask, False)
    if not mask.any():
        mask[0, 1] = True
    weights = np.where(mask, rng.integers(1, 5, size=(n, n)).astype(float), 0.0)
    return DiGraph(sp.csr_matrix(weights))


@st.composite
def index_params(draw, n_nodes: int):
    capacity = draw(st.integers(min_value=1, max_value=max(1, n_nodes)))
    hub_budget = draw(st.integers(min_value=0, max_value=n_nodes // 2))
    eta = draw(st.sampled_from([1e-2, 1e-3, 1e-4]))
    delta = draw(st.sampled_from([0.3, 0.1, 0.05]))
    block_size = draw(st.integers(min_value=1, max_value=6))
    return IndexParams(
        capacity=capacity,
        hub_budget=hub_budget,
        propagation_threshold=eta,
        residue_threshold=delta,
        block_size=block_size,
    )


def _topk_node_sets_match(vec_vector, sca_vector, k, atol=1e-9):
    """Tie-aware top-k node-set comparison between the two backends.

    Nodes strictly above the k-th scalar value must be in the vectorized
    top-k set, and the vectorized top-k set may not contain any node
    strictly below it — boundary ties (within ``atol``) may legitimately
    resolve either way.
    """
    k = min(k, sca_vector.size)
    kth = np.sort(sca_vector)[-k]
    vec_order = np.argsort(-vec_vector, kind="stable")[:k]
    vec_set = set(vec_order.tolist())
    must_include = np.flatnonzero(sca_vector > kth + atol)
    must_exclude = np.flatnonzero(sca_vector < kth - atol)
    assert set(must_include.tolist()) <= vec_set
    assert not (set(must_exclude.tolist()) & vec_set)


class TestBackendEquivalence:
    @given(random_digraphs(), st.data())
    @settings(max_examples=40, deadline=None)
    def test_vectorized_reconstructions_match_scalar(self, graph, data):
        params = data.draw(index_params(graph.n_nodes)).for_graph(graph.n_nodes)
        matrix = sp.csc_matrix(transition_matrix(graph))
        hubs = default_hub_selection(graph, params)
        hub_matrix, _, _ = _compute_hub_matrix(matrix, hubs, params)
        hub_mask = hubs.mask(graph.n_nodes)
        expansion = _HubExpansion(graph.n_nodes, hubs, hub_matrix)
        sources = [node for node in range(graph.n_nodes) if not hub_mask[node]]

        vectorized = PropagationKernel(
            matrix, hub_mask, params, hubs=hubs, hub_matrix=hub_matrix
        ).run(sources)
        scalar = PropagationKernel(
            matrix, hub_mask, params, hubs=hubs, hub_matrix=hub_matrix,
            backend="scalar",
        ).run(sources)

        for vec_state, sca_state in zip(vectorized, scalar):
            vec_vector = expansion.expand(vec_state)
            sca_vector = expansion.expand(sca_state)
            np.testing.assert_allclose(vec_vector, sca_vector, rtol=0, atol=1e-12)
            np.testing.assert_allclose(
                vec_state.lower_bounds, sca_state.lower_bounds, rtol=0, atol=1e-12
            )
            _topk_node_sets_match(vec_vector, sca_vector, params.capacity)

    @given(random_digraphs(), st.data())
    @settings(max_examples=25, deadline=None)
    def test_scalar_backend_bit_identical_to_seed(self, graph, data):
        """The scalar backend replays the seed build loop exactly.

        The seed reference is reconstructed from the per-node primitives it
        was factored into (initial state -> run_node_bca -> materialize per
        node, hub states from the exact hub top-K) — states, lower bounds
        and the derived columnar statistics must match bit for bit.
        """
        params = data.draw(index_params(graph.n_nodes)).for_graph(graph.n_nodes)
        matrix = sp.csc_matrix(transition_matrix(graph))
        hubs = default_hub_selection(graph, params)
        index = build_index(
            graph, params, transition=matrix, hubs=hubs, backend="scalar"
        )
        hub_matrix, _, hub_top_k = _compute_hub_matrix(matrix, hubs, params)
        hub_mask = hubs.mask(graph.n_nodes)
        expansion = _HubExpansion(graph.n_nodes, hubs, hub_matrix)
        for node in range(graph.n_nodes):
            state = index.state(node)
            if hub_mask[node]:
                assert state.is_hub
                np.testing.assert_array_equal(state.lower_bounds, hub_top_k[node])
                continue
            reference = initial_node_state(node, False)
            run_node_bca(reference, matrix, hub_mask, params)
            materialize_lower_bounds(reference, expansion, params.capacity)
            assert state.residual == reference.residual
            assert state.retained == reference.retained
            assert state.hub_ink == reference.hub_ink
            assert state.iterations == reference.iterations
            np.testing.assert_array_equal(state.lower_bounds, reference.lower_bounds)

    @given(random_digraphs(), st.data())
    @settings(max_examples=15, deadline=None)
    def test_backends_answer_queries_identically(self, graph, data):
        # Both backends must produce the exact reverse top-k answer: compare
        # each against the LU oracle (tie-aware at the k-th boundary, where
        # membership legitimately depends on the floating-point path).
        from repro.rwr import ProximityLU

        from tests.conftest import assert_reverse_topk_consistent

        params = data.draw(index_params(graph.n_nodes)).for_graph(graph.n_nodes)
        matrix = transition_matrix(graph)
        exact_matrix = ProximityLU(matrix).matrix()
        k = data.draw(st.integers(min_value=1, max_value=params.capacity))
        vec_engine = ReverseTopKEngine(
            matrix, build_index(graph, params, transition=matrix)
        )
        sca_engine = ReverseTopKEngine(
            matrix, build_index(graph, params, transition=matrix, backend="scalar")
        )
        for query in range(graph.n_nodes):
            a = vec_engine.query(query, k, update_index=False)
            b = sca_engine.query(query, k, update_index=False)
            assert_reverse_topk_consistent(a.nodes, exact_matrix, query, k)
            assert_reverse_topk_consistent(b.nodes, exact_matrix, query, k)


@pytest.mark.skipif(not numba_available(), reason="numba not installed")
class TestNumbaBackendEquivalence:
    """The compiled backend must track the scalar reference like the
    vectorized one does: within 1e-12 on reconstructed vectors and lower
    bounds, with tie-aware identical top-K node sets."""

    @given(random_digraphs(), st.data())
    @settings(max_examples=25, deadline=None)
    def test_numba_reconstructions_match_scalar(self, graph, data):
        params = data.draw(index_params(graph.n_nodes)).for_graph(graph.n_nodes)
        matrix = sp.csc_matrix(transition_matrix(graph))
        hubs = default_hub_selection(graph, params)
        hub_matrix, _, _ = _compute_hub_matrix(matrix, hubs, params)
        hub_mask = hubs.mask(graph.n_nodes)
        expansion = _HubExpansion(graph.n_nodes, hubs, hub_matrix)
        sources = [node for node in range(graph.n_nodes) if not hub_mask[node]]

        compiled = PropagationKernel(
            matrix, hub_mask, params, hubs=hubs, hub_matrix=hub_matrix,
            backend="numba",
        ).run(sources)
        scalar = PropagationKernel(
            matrix, hub_mask, params, hubs=hubs, hub_matrix=hub_matrix,
            backend="scalar",
        ).run(sources)

        for jit_state, sca_state in zip(compiled, scalar):
            jit_vector = expansion.expand(jit_state)
            sca_vector = expansion.expand(sca_state)
            np.testing.assert_allclose(jit_vector, sca_vector, rtol=0, atol=1e-12)
            np.testing.assert_allclose(
                jit_state.lower_bounds, sca_state.lower_bounds, rtol=0, atol=1e-12
            )
            _topk_node_sets_match(jit_vector, sca_vector, params.capacity)

    @given(random_digraphs(), st.data())
    @settings(max_examples=10, deadline=None)
    def test_numba_scan_mode_answers_queries_exactly(self, graph, data):
        from repro.rwr import ProximityLU

        from tests.conftest import assert_reverse_topk_consistent

        params = data.draw(index_params(graph.n_nodes)).for_graph(graph.n_nodes)
        matrix = transition_matrix(graph)
        exact_matrix = ProximityLU(matrix).matrix()
        k = data.draw(st.integers(min_value=1, max_value=params.capacity))
        engine = ReverseTopKEngine(matrix, build_index(graph, params, transition=matrix))
        for query in range(graph.n_nodes):
            numpy_res = engine.query(query, k, update_index=False)
            jit_res = engine.query(query, k, update_index=False, scan_mode="numba")
            np.testing.assert_array_equal(jit_res.nodes, numpy_res.nodes)
            assert_reverse_topk_consistent(jit_res.nodes, exact_matrix, query, k)


class TestFloat32ScreenedScan:
    """Property check: float32-screened scanning is bit-identical to the
    float64 scan — answers and decision counters — under random graphs."""

    @given(random_digraphs(), st.data())
    @settings(max_examples=20, deadline=None)
    def test_screened_engine_bit_identical(self, graph, data):
        params = data.draw(index_params(graph.n_nodes)).for_graph(graph.n_nodes)
        matrix = transition_matrix(graph)
        k = data.draw(st.integers(min_value=1, max_value=params.capacity))
        index = build_index(graph, params, transition=matrix)
        baseline = ReverseTopKEngine(matrix, index)
        screened = ReverseTopKEngine(matrix, index, scan_precision="float32")
        for query in range(graph.n_nodes):
            a = baseline.query(query, k, update_index=False)
            b = screened.query(query, k, update_index=False)
            np.testing.assert_array_equal(a.nodes, b.nodes)
            assert a.statistics.n_candidates == b.statistics.n_candidates
            assert a.statistics.n_hits == b.statistics.n_hits
            assert a.statistics.n_exact_shortcut == b.statistics.n_exact_shortcut
            assert (
                a.statistics.n_pruned_immediately
                == b.statistics.n_pruned_immediately
            )
            assert a.statistics.n_refined_nodes == b.statistics.n_refined_nodes
