"""Property test: the sharded query router never changes anything observable.

For random small graphs, random shard counts ``P`` (including counts that do
not divide the node count), and both shard backings (in-RAM and the memmap
layout), every answer of :class:`ShardedReverseTopKEngine` — result nodes,
proximity vectors, and every :class:`QueryStatistics` counter — must be
bit-identical to the monolithic :class:`ReverseTopKEngine` over the same
index contents.  With ``update_index=True`` the equivalence extends to the
refinement write-backs: after the same query stream, both indexes hold the
same per-node state values and the same global version counter.
"""

from hypothesis import given, settings
from hypothesis import strategies as st
import numpy as np
import scipy.sparse as sp

from repro.core import (
    IndexParams,
    ReverseTopKEngine,
    ShardedReverseTopKEngine,
    ShardedReverseTopKIndex,
    build_index,
)
from repro.graph import DiGraph, transition_matrix

COUNTER_FIELDS = (
    "n_results",
    "n_candidates",
    "n_hits",
    "n_exact_shortcut",
    "n_pruned_immediately",
    "n_refinement_iterations",
    "n_refined_nodes",
    "pmpn_iterations",
    "n_exact_fallbacks",
)


@st.composite
def sharded_cases(draw):
    """Random graph + shard count + query stream + backing choice."""
    n = draw(st.integers(min_value=4, max_value=16))
    density = draw(st.floats(min_value=0.15, max_value=0.5))
    seed = draw(st.integers(min_value=0, max_value=10_000))
    rng = np.random.default_rng(seed)
    mask = rng.random((n, n)) < density
    np.fill_diagonal(mask, False)
    if not mask.any():
        mask[0, 1] = True
    graph = DiGraph(sp.csr_matrix(mask.astype(float)))
    capacity = min(6, n)
    n_shards = draw(st.integers(min_value=1, max_value=n + 2))  # may exceed n
    queries = draw(
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=n - 1),
                st.integers(min_value=1, max_value=capacity),
            ),
            min_size=1,
            max_size=8,
        )
    )
    use_memmap = draw(st.booleans())
    update_index = draw(st.booleans())
    return graph, capacity, n_shards, queries, use_memmap, update_index


def _padded(bounds: np.ndarray, capacity: int) -> np.ndarray:
    return np.pad(bounds[:capacity], (0, max(0, capacity - bounds.size)))


class TestShardedEquivalence:
    @given(case=sharded_cases())
    @settings(max_examples=30, deadline=None)
    def test_answers_statistics_and_writebacks_bit_identical(
        self, case, tmp_path_factory
    ):
        graph, capacity, n_shards, queries, use_memmap, update_index = case
        matrix = transition_matrix(graph)
        params = IndexParams(capacity=capacity, hub_budget=1).for_graph(graph.n_nodes)

        mono_index = build_index(graph, params, transition=matrix)
        mono_engine = ReverseTopKEngine(matrix, mono_index)

        base = build_index(graph, params, transition=matrix)
        if use_memmap:
            directory = tmp_path_factory.mktemp("sharded-layout")
            sharded_index = ShardedReverseTopKIndex.from_index(
                base, n_shards, directory=directory, memory_budget=0
            )
        else:
            sharded_index = ShardedReverseTopKIndex.from_index(base, n_shards)
        router = ShardedReverseTopKEngine(matrix, sharded_index)

        for query, k in queries:
            expected = mono_engine.query(query, k, update_index=update_index)
            actual = router.query(query, k, update_index=update_index)
            np.testing.assert_array_equal(actual.nodes, expected.nodes)
            np.testing.assert_array_equal(
                actual.proximities_to_query, expected.proximities_to_query
            )
            for field in COUNTER_FIELDS:
                assert getattr(actual.statistics, field) == getattr(
                    expected.statistics, field
                ), field

        # Refinement write-backs landed identically: same version counter,
        # same per-node state values, same columnar k-th bounds.
        assert sharded_index.version == mono_index.version
        for k in range(1, capacity + 1):
            np.testing.assert_array_equal(
                sharded_index.kth_lower_bounds(k), mono_index.kth_lower_bounds(k)
            )
        if update_index:
            for node in range(graph.n_nodes):
                mono_state = mono_index.state(node)
                shard_state = sharded_index.state(node)
                assert shard_state.residual == mono_state.residual
                assert shard_state.retained == mono_state.retained
                assert shard_state.hub_ink == mono_state.hub_ink
                np.testing.assert_array_equal(
                    _padded(shard_state.lower_bounds, capacity),
                    _padded(mono_state.lower_bounds, capacity),
                )

    @given(case=sharded_cases())
    @settings(max_examples=10, deadline=None)
    def test_threaded_scan_matches_sequential(self, case, tmp_path_factory):
        graph, capacity, n_shards, queries, use_memmap, _ = case
        matrix = transition_matrix(graph)
        params = IndexParams(capacity=capacity, hub_budget=1).for_graph(graph.n_nodes)
        index = build_index(graph, params, transition=matrix)
        sharded = ShardedReverseTopKIndex.from_index(index, n_shards)
        sequential = ShardedReverseTopKEngine(matrix, sharded)
        with ShardedReverseTopKEngine(matrix, sharded, scan_workers=3) as threaded:
            for query, k in queries:
                a = sequential.query(query, k, update_index=False)
                b = threaded.query(query, k, update_index=False)
                np.testing.assert_array_equal(a.nodes, b.nodes)
                for field in COUNTER_FIELDS:
                    assert getattr(a.statistics, field) == getattr(
                        b.statistics, field
                    )
