"""Tests for content-addressed warm-start snapshots."""

import numpy as np

from repro.core import IndexParams, ReverseTopKEngine, build_index
from repro.graph import DiGraph, ring_graph
from repro.serving import (
    SnapshotManager,
    graph_fingerprint,
    params_fingerprint,
    snapshot_key,
)


class TestFingerprints:
    def test_graph_fingerprint_deterministic(self, small_web_graph):
        assert graph_fingerprint(small_web_graph) == graph_fingerprint(small_web_graph)

    def test_graph_fingerprint_distinguishes_graphs(self):
        assert graph_fingerprint(ring_graph(8)) != graph_fingerprint(ring_graph(9))

    def test_graph_fingerprint_sees_labels(self):
        plain = ring_graph(4)
        labelled = DiGraph(plain.adjacency, [f"n{i}" for i in range(4)])
        assert graph_fingerprint(plain) != graph_fingerprint(labelled)

    def test_params_fingerprint_sensitive_to_every_field(self):
        base = IndexParams(capacity=10, hub_budget=2)
        assert params_fingerprint(base) == params_fingerprint(
            IndexParams(capacity=10, hub_budget=2)
        )
        assert params_fingerprint(base) != params_fingerprint(
            IndexParams(capacity=11, hub_budget=2)
        )
        assert params_fingerprint(base) != params_fingerprint(
            IndexParams(capacity=10, hub_budget=3)
        )

    def test_transition_fingerprint_does_not_mutate_input(self):
        import scipy.sparse as sp

        from repro.serving.snapshot import transition_fingerprint

        # Duplicate, unsorted entries: canonicalisation must work on a copy.
        matrix = sp.csr_matrix(
            (
                np.array([1.0, 2.0, 3.0]),
                (np.array([0, 0, 1]), np.array([1, 1, 0])),
            ),
            shape=(2, 2),
        )
        data_before = matrix.data.copy()
        indptr_before = matrix.indptr.copy()
        transition_fingerprint(matrix)
        np.testing.assert_array_equal(matrix.data, data_before)
        np.testing.assert_array_equal(matrix.indptr, indptr_before)

    def test_snapshot_key_combines_both(self, small_web_graph):
        a = snapshot_key(small_web_graph, IndexParams(capacity=10, hub_budget=2))
        b = snapshot_key(small_web_graph, IndexParams(capacity=12, hub_budget=2))
        assert a != b

    def test_snapshot_key_sees_transition(self, small_web_graph, small_transition):
        params = IndexParams(capacity=10, hub_budget=2)
        default = snapshot_key(small_web_graph, params)
        explicit = snapshot_key(small_web_graph, params, small_transition)
        reweighted = snapshot_key(small_web_graph, params, small_transition * 0.5)
        assert default != explicit  # explicit matrix never collides with marker
        assert explicit != reweighted
        assert explicit == snapshot_key(small_web_graph, params, small_transition)

    def test_different_transition_is_a_miss(
        self, tmp_path, small_web_graph, small_transition, small_params
    ):
        # An index built for one transition must never warm-start an engine
        # paired with a different one.
        manager = SnapshotManager(tmp_path)
        manager.load_or_build(
            small_web_graph, small_params, transition=small_transition
        )
        other = (small_transition * 0.5).tocsc()
        _, hit = manager.load_or_build(small_web_graph, small_params, transition=other)
        assert not hit


class TestSnapshotManager:
    def test_miss_then_hit(self, tmp_path, small_web_graph, small_transition, small_params):
        manager = SnapshotManager(tmp_path / "snaps")
        index, from_snapshot = manager.load_or_build(
            small_web_graph, small_params, transition=small_transition
        )
        assert not from_snapshot
        reloaded, second = manager.load_or_build(
            small_web_graph, small_params, transition=small_transition
        )
        assert second
        np.testing.assert_allclose(
            reloaded.columns.lower, index.columns.lower
        )

    def test_loaded_index_answers_like_fresh_build(
        self, tmp_path, small_web_graph, small_transition, small_params
    ):
        manager = SnapshotManager(tmp_path)
        fresh = build_index(small_web_graph, small_params, transition=small_transition)
        manager.store(fresh, small_web_graph, transition=small_transition)
        loaded, hit = manager.load_or_build(
            small_web_graph, small_params, transition=small_transition
        )
        assert hit
        expected = ReverseTopKEngine(small_transition, fresh).query(
            3, 5, update_index=False
        )
        actual = ReverseTopKEngine(small_transition, loaded).query(
            3, 5, update_index=False
        )
        np.testing.assert_array_equal(actual.nodes, expected.nodes)

    def test_different_params_different_archives(
        self, tmp_path, small_web_graph, small_transition
    ):
        manager = SnapshotManager(tmp_path)
        a = IndexParams(capacity=8, hub_budget=2)
        b = IndexParams(capacity=12, hub_budget=2)
        manager.load_or_build(small_web_graph, a, transition=small_transition)
        _, hit = manager.load_or_build(small_web_graph, b, transition=small_transition)
        assert not hit
        assert len(list(manager.directory.glob("lbi-*.npz"))) == 2

    def test_corrupted_archive_is_a_miss(
        self, tmp_path, small_web_graph, small_transition, small_params
    ):
        manager = SnapshotManager(tmp_path)
        index, _ = manager.load_or_build(
            small_web_graph, small_params, transition=small_transition
        )
        path = manager.path_for(
            small_web_graph,
            small_params.for_graph(small_web_graph.n_nodes),
            small_transition,
        )
        path.write_bytes(b"not an npz archive")
        rebuilt, hit = manager.load_or_build(
            small_web_graph, small_params, transition=small_transition
        )
        assert not hit
        assert rebuilt.n_nodes == index.n_nodes
        # The rebuild re-archived a valid snapshot over the corrupted file.
        _, hit_again = manager.load_or_build(
            small_web_graph, small_params, transition=small_transition
        )
        assert hit_again

    def test_truncated_archive_is_a_miss(
        self, tmp_path, small_web_graph, small_transition, small_params
    ):
        manager = SnapshotManager(tmp_path)
        index, _ = manager.load_or_build(
            small_web_graph, small_params, transition=small_transition
        )
        path = manager.path_for(
            small_web_graph,
            small_params.for_graph(small_web_graph.n_nodes),
            small_transition,
        )
        payload = path.read_bytes()
        path.write_bytes(payload[: len(payload) // 2])  # torn but zip-magic-led
        rebuilt, hit = manager.load_or_build(
            small_web_graph, small_params, transition=small_transition
        )
        assert not hit
        assert rebuilt.n_nodes == index.n_nodes

    def test_store_on_miss_false_leaves_no_archive(
        self, tmp_path, small_web_graph, small_transition, small_params
    ):
        manager = SnapshotManager(tmp_path)
        manager.load_or_build(
            small_web_graph,
            small_params,
            transition=small_transition,
            store_on_miss=False,
        )
        assert not list(manager.directory.glob("*.npz"))

    def test_key_uses_effective_params(self, tmp_path, small_transition, small_web_graph):
        # Defaults get clamped by for_graph; the snapshot must be found again
        # whether the caller passes the raw or the clamped parameters.
        manager = SnapshotManager(tmp_path)
        raw = IndexParams()  # capacity 200 clamps to n_nodes
        manager.load_or_build(small_web_graph, raw, transition=small_transition)
        _, hit = manager.load_or_build(
            small_web_graph,
            raw.for_graph(small_web_graph.n_nodes),
            transition=small_transition,
        )
        assert hit


class TestParallelBuildOrLoad:
    def test_miss_builds_in_parallel_and_archives(
        self, tmp_path, small_web_graph, small_transition, small_params
    ):
        manager = SnapshotManager(tmp_path)
        index, hit = manager.build_or_load(
            small_web_graph, small_params, transition=small_transition, parallel=2
        )
        assert not hit
        assert index.n_nodes == small_web_graph.n_nodes
        # The parallel cold path archives under the same content key a
        # serial build would use, so the next start is a warm hit either way.
        _, hit_serial = manager.load_or_build(
            small_web_graph, small_params, transition=small_transition
        )
        assert hit_serial
        _, hit_parallel = manager.build_or_load(
            small_web_graph, small_params, transition=small_transition, parallel=2
        )
        assert hit_parallel

    def test_parallel_build_bit_identical_to_serial_archive(
        self, tmp_path, small_web_graph, small_transition, small_params
    ):
        manager = SnapshotManager(tmp_path / "parallel")
        parallel, _ = manager.build_or_load(
            small_web_graph, small_params, transition=small_transition, parallel=2
        )
        serial = build_index(small_web_graph, small_params, transition=small_transition)
        for (node, a), (_, b) in zip(parallel.states(), serial.states()):
            assert a.residual == b.residual, node
            assert a.retained == b.retained, node
            assert a.hub_ink == b.hub_ink, node
            np.testing.assert_array_equal(a.lower_bounds, b.lower_bounds)
        np.testing.assert_array_equal(
            parallel.columns.lower, serial.columns.lower
        )

    def test_parallel_none_matches_load_or_build(
        self, tmp_path, small_web_graph, small_transition, small_params
    ):
        manager = SnapshotManager(tmp_path)
        index, hit = manager.build_or_load(
            small_web_graph, small_params, transition=small_transition
        )
        assert not hit
        reference, hit = manager.load_or_build(
            small_web_graph, small_params, transition=small_transition
        )
        assert hit
        assert reference.n_nodes == index.n_nodes

    def test_parallel_answers_queries(self, tmp_path, small_web_graph, small_transition, small_params):
        manager = SnapshotManager(tmp_path)
        index, _ = manager.build_or_load(
            small_web_graph, small_params, transition=small_transition, parallel=2
        )
        engine = ReverseTopKEngine(small_transition, index)
        serial_engine = ReverseTopKEngine(
            small_transition,
            build_index(small_web_graph, small_params, transition=small_transition),
        )
        for query in (0, 13, 31):
            a = engine.query(query, 5, update_index=False)
            b = serial_engine.query(query, 5, update_index=False)
            np.testing.assert_array_equal(a.nodes, b.nodes)


class TestContentNeutralParams:
    def test_block_size_excluded_from_snapshot_key(self, small_web_graph, small_transition):
        # block_size cannot change index contents (per-source trajectories
        # are bitwise block-independent), so retuning it must keep existing
        # warm-start archives valid.
        a = IndexParams(capacity=10, hub_budget=2, block_size=256)
        b = IndexParams(capacity=10, hub_budget=2, block_size=32)
        assert params_fingerprint(a) == params_fingerprint(b)
        assert snapshot_key(small_web_graph, a, small_transition) == snapshot_key(
            small_web_graph, b, small_transition
        )

    def test_backend_participates_in_snapshot_key(self, small_web_graph):
        a = IndexParams(capacity=10, hub_budget=2, backend="vectorized")
        b = IndexParams(capacity=10, hub_budget=2, backend="scalar")
        assert params_fingerprint(a) != params_fingerprint(b)

    def test_block_size_retune_hits_existing_archive(
        self, tmp_path, small_web_graph, small_transition
    ):
        manager = SnapshotManager(tmp_path)
        manager.build_or_load(
            small_web_graph,
            IndexParams(capacity=10, hub_budget=2, block_size=256),
            transition=small_transition,
        )
        _, hit = manager.build_or_load(
            small_web_graph,
            IndexParams(capacity=10, hub_budget=2, block_size=16),
            transition=small_transition,
        )
        assert hit

    def test_warm_hit_honours_retuned_block_size(
        self, tmp_path, small_web_graph, small_transition
    ):
        # A hit must not resurrect the archive's block width: the retune is
        # exactly how operators cap the kernel's dense working set.
        manager = SnapshotManager(tmp_path)
        manager.build_or_load(
            small_web_graph,
            IndexParams(capacity=10, hub_budget=2, block_size=256),
            transition=small_transition,
        )
        warm, hit = manager.build_or_load(
            small_web_graph,
            IndexParams(capacity=10, hub_budget=2, block_size=16),
            transition=small_transition,
        )
        assert hit
        assert warm.params.block_size == 16
