"""Lifecycle tests: close() must be idempotent and concurrent-safe.

The network layer closes retired service generations while requests may
still be racing toward them, so close semantics are load-bearing: a closed
service fails fast with ``ServiceClosedError`` (never a crash in a released
resource), double/concurrent close is a no-op, and an in-flight ``serve``
either completes normally or observes the closed flag — nothing in between.
"""

from __future__ import annotations

import threading

import pytest

from repro.dynamic import DynamicReverseTopKService, GraphUpdate
from repro.exceptions import ServiceClosedError
from repro.serving.service import ReverseTopKService, ServiceConfig


@pytest.fixture()
def service(small_web_graph):
    service = ReverseTopKService.from_graph(small_web_graph)
    yield service
    if not service.closed:
        service.close()


@pytest.fixture()
def dynamic_service(small_web_graph):
    service = DynamicReverseTopKService.from_graph(small_web_graph)
    yield service
    if not service.closed:
        service.close()


class TestStaticClose:
    def test_close_is_idempotent(self, service):
        assert not service.closed
        service.close()
        service.close()
        service.close()
        assert service.closed

    def test_serve_after_close_raises(self, service):
        service.close()
        with pytest.raises(ServiceClosedError):
            service.serve([(3, 5)])
        with pytest.raises(ServiceClosedError):
            service.query(3, 5)

    def test_refine_after_close_raises(self, service):
        service.close()
        with pytest.raises(ServiceClosedError):
            service.refine(3, 5)

    def test_concurrent_close_races_cleanly(self, small_web_graph):
        service = ReverseTopKService.from_graph(small_web_graph)
        barrier = threading.Barrier(8)
        errors = []

        def slam():
            barrier.wait()
            try:
                service.close()
            except Exception as exc:  # noqa: BLE001 - the assertion target
                errors.append(exc)

        threads = [threading.Thread(target=slam) for _ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors
        assert service.closed

    def test_close_races_in_flight_serves(self, small_web_graph):
        """Concurrent serve() calls either finish or fail fast — no crashes
        from scanning a released index."""
        service = ReverseTopKService.from_graph(
            small_web_graph, config=ServiceConfig(cache_capacity=0)
        )
        requests = [(q % 60, 5) for q in range(120)]
        unexpected = []
        served = []

        def hammer():
            try:
                served.append(service.serve(requests))
            except ServiceClosedError:
                pass  # the documented outcome after close wins the race
            except Exception as exc:  # noqa: BLE001 - the assertion target
                unexpected.append(exc)

        threads = [threading.Thread(target=hammer) for _ in range(4)]
        for thread in threads:
            thread.start()
        service.close()
        for thread in threads:
            thread.join()
        assert not unexpected
        for results in served:
            assert len(results) == len(requests)


class TestDynamicClose:
    def test_apply_updates_after_close_raises(self, dynamic_service):
        dynamic_service.close()
        with pytest.raises(ServiceClosedError):
            dynamic_service.apply_updates([GraphUpdate.add(0, 30)])

    def test_close_is_idempotent(self, dynamic_service):
        dynamic_service.close()
        dynamic_service.close()
        assert dynamic_service.closed

    def test_close_races_apply_updates(self, small_web_graph):
        service = DynamicReverseTopKService.from_graph(small_web_graph)
        present = {(u, v) for u, v, _ in small_web_graph.edges()}
        fresh = [
            (u, v)
            for u in range(10)
            for v in range(small_web_graph.n_nodes)
            if u != v and (u, v) not in present
        ][:8]
        unexpected = []

        def churn():
            try:
                for u, v in fresh:
                    service.apply_updates([GraphUpdate.add(u, v)])
            except ServiceClosedError:
                pass
            except Exception as exc:  # noqa: BLE001 - the assertion target
                unexpected.append(exc)

        thread = threading.Thread(target=churn)
        thread.start()
        service.close()
        thread.join()
        assert not unexpected
        assert service.closed
