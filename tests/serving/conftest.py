"""Fixtures for the serving-layer tests: a small shared read-only engine."""

from __future__ import annotations

import pytest

from repro.core import ReverseTopKEngine


@pytest.fixture(scope="module")
def serving_engine(small_web_graph, small_transition, small_index):
    """An engine over the shared small index.

    Serving-layer code paths are read-only (``update_index=False``), so the
    session-scoped index fixture can be shared; tests that refine must build
    their own engine from a deep copy.
    """
    return ReverseTopKEngine(small_transition, small_index)
