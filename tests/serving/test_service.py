"""Tests for the ReverseTopKService façade and the parallel executor."""

import copy

import numpy as np
import pytest

from repro.core import ReverseTopKEngine
from repro.exceptions import QueryError
from repro.serving import (
    ParallelExecutor,
    ReverseTopKService,
    ServiceConfig,
)
from repro.workloads import replay, uniform_query_workload, zipfian_query_workload


def _fresh_service(serving_engine, **overrides):
    return ReverseTopKService(serving_engine, ServiceConfig(**overrides))


class TestServiceAnswers:
    def test_single_query_matches_engine(self, serving_engine):
        service = _fresh_service(serving_engine)
        expected = serving_engine.query(3, 5, update_index=False)
        actual = service.query(3, 5)
        np.testing.assert_array_equal(actual.nodes, expected.nodes)
        np.testing.assert_array_equal(
            actual.proximities_to_query, expected.proximities_to_query
        )

    def test_burst_preserves_request_order(self, serving_engine):
        service = _fresh_service(serving_engine)
        requests = [(5, 5), (2, 5), (5, 5), (9, 3)]
        results = service.serve(requests)
        assert [(r.query, r.k) for r in results] == requests

    def test_duplicates_get_equal_but_independent_results(self, serving_engine):
        # In-flight dedup computes once, but each awaiting caller must get a
        # defensive copy: handing out one shared object let any caller's
        # mutation corrupt every other caller's answer (regression test).
        service = _fresh_service(serving_engine)
        first, second = service.serve([(4, 5), (4, 5)])
        assert first is not second
        assert first.statistics is not second.statistics
        np.testing.assert_array_equal(first.nodes, second.nodes)
        # The heavy arrays are shared — safe, because they are frozen.
        assert first.nodes is second.nodes
        first.statistics.stage_seconds["injected"] = 1.0
        assert "injected" not in second.statistics.stage_seconds
        assert service.metrics().n_deduplicated == 1

    def test_cached_hit_returns_equal_independent_result(self, serving_engine):
        service = _fresh_service(serving_engine)
        cold = service.query(6, 5)
        warm = service.query(6, 5)
        assert warm is not cold  # defensive copy, not the cached object
        np.testing.assert_array_equal(warm.nodes, cold.nodes)
        assert warm.statistics is not cold.statistics
        metrics = service.metrics()
        assert metrics.n_cache_hits == 1
        assert metrics.n_engine_queries == 1

    def test_result_arrays_are_frozen(self, serving_engine):
        # The engine freezes both answer arrays: one result may be shared by
        # the cache and several requesters, so in-place edits must fail
        # loudly instead of corrupting every holder.
        service = _fresh_service(serving_engine)
        result = service.query(4, 5)
        with pytest.raises(ValueError):
            result.nodes[0] = -1
        with pytest.raises(ValueError):
            result.proximities_to_query[0] = 123.0

    def test_concurrent_statistics_mutation_does_not_cross_requesters(
        self, serving_engine
    ):
        # Regression: in-flight dedup used to hand the *same* QueryResult to
        # every awaiting caller, so one caller mutating the (mutable)
        # stage_seconds dict corrupted all the others — and the cached copy.
        import threading

        service = _fresh_service(serving_engine)
        results = service.serve([(4, 5)] * 8)
        barrier = threading.Barrier(8)

        def vandalize(result, tag):
            barrier.wait()
            result.statistics.stage_seconds[f"tag-{tag}"] = float(tag)

        threads = [
            threading.Thread(target=vandalize, args=(result, tag))
            for tag, result in enumerate(results)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        for tag, result in enumerate(results):
            extras = [key for key in result.statistics.stage_seconds if key.startswith("tag-")]
            assert extras == [f"tag-{tag}"]
        # The cache's pristine copy never saw any of it.
        cached = service.query(4, 5)
        assert not any(
            key.startswith("tag-") for key in cached.statistics.stage_seconds
        )

    def test_result_arrays_stay_frozen_through_process_round_trip(
        self, serving_engine
    ):
        # Regression: NumPy drops the read-only flag on unpickle, so results
        # shipped back from process-pool workers arrived writable and one
        # caller's in-place edit could corrupt the cached entry.
        import pickle

        result = serving_engine.query(4, 5, update_index=False)
        clone = pickle.loads(pickle.dumps(result))
        assert not clone.nodes.flags.writeable
        assert not clone.proximities_to_query.flags.writeable

    def test_cache_disabled_recomputes(self, serving_engine):
        service = _fresh_service(serving_engine, cache_capacity=0)
        service.query(6, 5)
        service.query(6, 5)
        metrics = service.metrics()
        assert metrics.n_cache_hits == 0
        assert metrics.n_engine_queries == 2

    def test_mixed_k_burst(self, serving_engine):
        service = _fresh_service(serving_engine)
        results = service.serve([(1, 3), (1, 5), (2, 3)])
        expected_3 = serving_engine.query(1, 3, update_index=False)
        expected_5 = serving_engine.query(1, 5, update_index=False)
        np.testing.assert_array_equal(results[0].nodes, expected_3.nodes)
        np.testing.assert_array_equal(results[1].nodes, expected_5.nodes)
        assert service.metrics().n_batches == 2

    def test_invalid_query_node_rejected(self, serving_engine):
        service = _fresh_service(serving_engine)
        with pytest.raises(Exception):
            service.serve([(serving_engine.n_nodes + 5, 5)])

    def test_serve_workload(self, serving_engine, small_web_graph):
        service = _fresh_service(serving_engine)
        workload = uniform_query_workload(small_web_graph, 12, k=5, seed=3)
        results = service.serve_workload(workload)
        assert len(results) == 12
        for query, result in zip(workload, results):
            expected = serving_engine.query(query, 5, update_index=False)
            np.testing.assert_array_equal(result.nodes, expected.nodes)


class TestParallelBackends:
    @pytest.mark.parametrize("backend", ["thread", "process"])
    def test_parallel_matches_sequential(self, serving_engine, backend):
        queries = list(range(0, 20))
        sequential = serving_engine.query_many_readonly(queries, 5)
        with ParallelExecutor(serving_engine, n_workers=3, backend=backend) as executor:
            parallel, reports = executor.run(queries, 5)
        assert len(parallel) == len(sequential)
        for seq, par in zip(sequential, parallel):
            np.testing.assert_array_equal(par.nodes, seq.nodes)
        assert sum(report.n_queries for report in reports) == len(queries)
        assert len(reports) == 3

    @pytest.mark.parametrize("backend", ["thread", "process"])
    def test_run_many_matches_direct_queries(self, serving_engine, backend):
        batches = [(5, list(range(0, 8))), (3, list(range(8, 12))), (5, [1])]
        with ParallelExecutor(serving_engine, n_workers=3, backend=backend) as executor:
            groups, reports = executor.run_many(batches)
        assert [len(group) for group in groups] == [8, 4, 1]
        for (k, queries), group in zip(batches, groups):
            expected = serving_engine.query_many_readonly(queries, k)
            for direct, result in zip(expected, group):
                np.testing.assert_array_equal(result.nodes, direct.nodes)
        assert sum(report.n_queries for report in reports) == 13

    def test_run_many_sequential_and_edge_cases(self, serving_engine):
        executor = ParallelExecutor(serving_engine, n_workers=0)
        groups, reports = executor.run_many([(5, [1, 2]), (3, [4])])
        assert len(groups) == 2 and len(reports) == 2
        assert executor.run_many([]) == ([], [])
        # A single batch degrades to run(), which splits across workers.
        single, single_reports = executor.run_many([(5, [1, 2, 3])])
        assert len(single) == 1 and len(single[0]) == 3

    def test_sequential_fallback_single_report(self, serving_engine):
        executor = ParallelExecutor(serving_engine, n_workers=0)
        results, reports = executor.run([1, 2, 3], 5)
        assert len(results) == 3
        assert len(reports) == 1

    def test_empty_batch(self, serving_engine):
        executor = ParallelExecutor(serving_engine, n_workers=2)
        results, reports = executor.run([], 5)
        assert results == [] and reports == []

    def test_invalid_backend_rejected(self, serving_engine):
        with pytest.raises(Exception):
            ParallelExecutor(serving_engine, backend="fiber")

    def test_service_with_thread_workers(self, serving_engine):
        service = _fresh_service(serving_engine, n_workers=2, max_batch_size=4)
        requests = [(q, 5) for q in range(10)]
        results = service.serve(requests)
        for (query, k), result in zip(requests, results):
            expected = serving_engine.query(query, k, update_index=False)
            np.testing.assert_array_equal(result.nodes, expected.nodes)
        service.close()


class TestReadonlyEntryPoint:
    def test_does_not_mutate_index_or_version(self, serving_engine):
        before = serving_engine.index.version
        lower_before = serving_engine.index.lower_bound_matrix()
        serving_engine.query_many_readonly(list(range(10)), 5)
        assert serving_engine.index.version == before
        np.testing.assert_array_equal(
            serving_engine.index.lower_bound_matrix(), lower_before
        )

    def test_rejects_update_params(self, serving_engine):
        from repro.core import QueryParams

        with pytest.raises(QueryError):
            serving_engine.query_many_readonly(
                [1], params=QueryParams(k=5, update_index=True)
            )


class TestVersioningAndInvalidation:
    def test_refinement_bumps_version(self, small_transition, small_index):
        engine = ReverseTopKEngine(small_transition, copy.deepcopy(small_index))
        before = engine.index.version
        # Refine every node at full depth: at least one candidate will be
        # written back on a fresh (unwarmed) index.
        for query in range(engine.n_nodes):
            engine.query(query, engine.index.capacity, update_index=True)
        assert engine.index.version > before

    def test_sync_state_bumps_version(self, small_transition, small_index):
        index = copy.deepcopy(small_index)
        before = index.version
        index.sync_state(0)
        assert index.version == before + 1

    def test_version_bump_invalidates_cached_answers(
        self, small_transition, small_index
    ):
        engine = ReverseTopKEngine(small_transition, copy.deepcopy(small_index))
        service = ReverseTopKService(engine)
        service.query(3, 5)
        assert service.metrics().n_engine_queries == 1
        # Persisting any refinement bumps the version ⇒ the old entry no
        # longer matches and the answer is recomputed.
        engine.index.sync_state(0)
        service.query(3, 5)
        metrics = service.metrics()
        assert metrics.n_engine_queries == 2
        assert metrics.n_cache_hits == 0

    def test_concurrent_serve_and_refine_stay_correct(
        self, small_transition, small_index
    ):
        # refine() rewrites the shared columnar views; serve batches scan
        # them from worker threads.  The service's read/write lock must keep
        # the two apart so every served answer equals the direct answer
        # (membership is exact, so it is refinement-state independent).
        import threading

        engine = ReverseTopKEngine(small_transition, copy.deepcopy(small_index))
        reference = ReverseTopKEngine(small_transition, copy.deepcopy(small_index))
        service = ReverseTopKService(
            engine, ServiceConfig(cache_capacity=0, n_workers=2, max_batch_size=4)
        )
        n = engine.n_nodes
        errors = []

        def refiner():
            try:
                for query in range(n):
                    service.refine(query, engine.index.capacity)
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        def server():
            try:
                for _ in range(5):
                    requests = [(q, 5) for q in range(0, n, 3)]
                    for (query, k), result in zip(requests, service.serve(requests)):
                        expected = reference.query(query, k, update_index=False)
                        np.testing.assert_array_equal(result.nodes, expected.nodes)
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        threads = [threading.Thread(target=refiner)] + [
            threading.Thread(target=server) for _ in range(2)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        service.close()
        assert not errors

    def test_refine_counts_and_answers(self, small_transition, small_index):
        engine = ReverseTopKEngine(small_transition, copy.deepcopy(small_index))
        service = ReverseTopKService(engine)
        expected = ReverseTopKEngine(
            small_transition, copy.deepcopy(small_index)
        ).query(4, 5, update_index=True)
        result = service.refine(4, 5)
        np.testing.assert_array_equal(result.nodes, expected.nodes)
        assert service.metrics().n_refinements == 1


class TestReadWriteLock:
    def test_queued_writer_blocks_new_readers(self):
        import threading
        import time

        from repro.serving.service import _ReadWriteLock

        lock = _ReadWriteLock()
        order = []
        reader_in = threading.Event()
        release_reader = threading.Event()

        def long_reader():
            with lock.read():
                reader_in.set()
                release_reader.wait(5)

        def writer():
            with lock.write():
                order.append("writer")

        def late_reader():
            with lock.read():
                order.append("reader")

        threads = [threading.Thread(target=long_reader)]
        threads[0].start()
        assert reader_in.wait(5)
        threads.append(threading.Thread(target=writer))
        threads[1].start()
        time.sleep(0.05)  # let the writer queue up behind the reader
        threads.append(threading.Thread(target=late_reader))
        threads[2].start()
        time.sleep(0.05)
        # Neither may proceed while the first reader is inside and a writer
        # is queued — in particular the late reader must NOT slip past.
        assert order == []
        release_reader.set()
        for thread in threads:
            thread.join(5)
        assert order[0] == "writer"
        assert sorted(order) == ["reader", "writer"]


class TestMetrics:
    def test_counters_add_up(self, serving_engine):
        service = _fresh_service(serving_engine)
        service.serve([(1, 5), (2, 5), (1, 5)])  # 2 unique + 1 dedup
        service.serve([(1, 5), (3, 5)])  # 1 hit + 1 unique
        metrics = service.metrics()
        assert metrics.n_requests == 5
        assert metrics.n_cache_hits == 1
        assert metrics.n_deduplicated == 1
        assert metrics.n_engine_queries == 3
        assert metrics.latency["count"] == 3
        assert metrics.serve_seconds > 0
        assert metrics.throughput_qps > 0

    def test_as_dict_is_json_ready(self, serving_engine):
        import json

        service = _fresh_service(serving_engine)
        service.serve([(1, 5)])
        payload = json.dumps(service.metrics().as_dict())
        assert "throughput_qps" in payload

    def test_metrics_waits_for_index_writer(self, serving_engine):
        """Regression: the version in a snapshot is read under the index
        read lock, so a refinement mid-rewrite can never leak a half-bumped
        value — metrics() must queue behind a live writer."""
        import threading

        service = _fresh_service(serving_engine)
        done = threading.Event()
        captured = []

        def read_metrics():
            captured.append(service.metrics().index_version)
            done.set()

        with service._index_lock.write():
            thread = threading.Thread(target=read_metrics)
            thread.start()
            assert not done.wait(0.15)  # blocked behind the writer
        assert done.wait(5.0)
        thread.join(5.0)
        assert captured == [service.engine.index.version]

    def test_clear_cache(self, serving_engine):
        service = _fresh_service(serving_engine)
        service.query(2, 5)
        service.clear_cache()
        service.query(2, 5)
        assert service.metrics().n_engine_queries == 2


class TestReplayDriver:
    def test_replay_matches_direct_queries(self, serving_engine, small_web_graph):
        service = _fresh_service(serving_engine)
        workload = zipfian_query_workload(small_web_graph, 40, k=5, seed=7)
        report = replay(service, workload, burst_size=8)
        assert report.n_requests == 40
        assert report.n_bursts == 5
        assert report.throughput_qps > 0
        for query, result in zip(workload, report.results):
            expected = serving_engine.query(query, 5, update_index=False)
            np.testing.assert_array_equal(result.nodes, expected.nodes)
        # A zipf workload repeats queries, so the cache must have fired.
        assert report.metrics.n_cache_hits + report.metrics.n_deduplicated > 0

    def test_replay_single_burst(self, serving_engine, small_web_graph):
        service = _fresh_service(serving_engine)
        workload = uniform_query_workload(small_web_graph, 6, k=5, seed=1)
        report = replay(service, workload, burst_size=len(workload))
        assert report.n_bursts == 1


class TestFromGraphWarmStart:
    def test_snapshot_round_trip(self, tmp_path, small_web_graph, small_params):
        cold = ReverseTopKService.from_graph(
            small_web_graph, small_params, snapshot_dir=tmp_path
        )
        warm = ReverseTopKService.from_graph(
            small_web_graph, small_params, snapshot_dir=tmp_path
        )
        assert not cold.warm_started
        assert warm.warm_started
        np.testing.assert_array_equal(
            warm.query(5, 5).nodes, cold.query(5, 5).nodes
        )

    def test_without_snapshot_dir(self, small_web_graph, small_params):
        service = ReverseTopKService.from_graph(small_web_graph, small_params)
        assert not service.warm_started
        assert len(service.query(1, 5)) >= 0
