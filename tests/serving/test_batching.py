"""Tests for the batch scheduler: dedup, same-k grouping, chunking."""

import pytest

from repro.serving import BatchScheduler


class TestBatchScheduler:
    def test_unique_requests_one_batch_per_k(self):
        plan = BatchScheduler(8).plan([(1, 5), (2, 5), (3, 7)])
        assert plan.n_requests == 3
        assert plan.n_cache_hits == 0
        assert plan.n_deduplicated == 0
        assert sorted(plan.batches) == [(5, [1, 2]), (7, [3])]

    def test_duplicates_collapse_to_one_computation(self):
        plan = BatchScheduler(8).plan([(1, 5), (1, 5), (2, 5), (1, 5)])
        assert plan.n_unique_misses == 2
        assert plan.n_deduplicated == 2
        assert plan.assignments[(1, 5)] == [0, 1, 3]
        assert plan.assignments[(2, 5)] == [2]
        assert plan.batches == [(5, [1, 2])]

    def test_same_query_different_k_not_deduplicated(self):
        plan = BatchScheduler(8).plan([(1, 5), (1, 7)])
        assert plan.n_unique_misses == 2
        assert plan.n_deduplicated == 0

    def test_cache_lookup_splits_hits(self):
        cached = {(2, 5): "hit"}
        plan = BatchScheduler(8).plan(
            [(1, 5), (2, 5), (2, 5)], lookup=lambda r: cached.get(r)
        )
        assert plan.cached == {1: "hit", 2: "hit"}
        assert plan.n_cache_hits == 2
        assert plan.n_unique_misses == 1
        assert plan.batches == [(5, [1])]

    def test_chunking_respects_max_batch_size(self):
        requests = [(q, 5) for q in range(10)]
        plan = BatchScheduler(4).plan(requests)
        assert [len(queries) for _, queries in plan.batches] == [4, 4, 2]
        flattened = [q for _, queries in plan.batches for q in queries]
        assert flattened == list(range(10))

    def test_first_seen_order_preserved(self):
        plan = BatchScheduler(8).plan([(9, 5), (3, 5), (9, 5), (1, 5)])
        assert plan.batches == [(5, [9, 3, 1])]

    def test_empty_burst(self):
        plan = BatchScheduler(8).plan([])
        assert plan.n_requests == 0
        assert plan.batches == []

    def test_invalid_batch_size_rejected(self):
        with pytest.raises(ValueError):
            BatchScheduler(0)
