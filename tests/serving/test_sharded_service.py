"""Serving-layer integration tests for the partitioned (sharded) index.

Covers the wiring the tentpole adds around :mod:`repro.core.sharding`:
warm-start through the snapshot layout, the static and dynamic service
façades over a sharded engine, both executor backends, and a fresh-process
smoke test that loads a memmap-backed layout the way a cold serving replica
would.
"""

from pathlib import Path
import subprocess
import sys

import numpy as np
import pytest

from repro.core import (
    IndexParams,
    ReverseTopKEngine,
    ShardedReverseTopKIndex,
    build_index,
)
from repro.dynamic import DynamicReverseTopKService, GraphUpdate
from repro.graph import copying_web_graph, transition_matrix
from repro.serving import ReverseTopKService, ServiceConfig, SnapshotManager


@pytest.fixture(scope="module")
def sharded_setup():
    graph = copying_web_graph(140, out_degree=4, seed=23)
    matrix = transition_matrix(graph)
    params = IndexParams(capacity=12, hub_budget=4)
    index = build_index(graph, params, transition=matrix)
    reference = ReverseTopKEngine(matrix, index)
    return graph, matrix, params, reference


REQUESTS = [(5, 6), (88, 6), (5, 6), (139, 3), (42, 6)]


class TestShardedSnapshots:
    def test_build_or_load_sharded_round_trip(self, sharded_setup, tmp_path):
        graph, matrix, params, reference = sharded_setup
        manager = SnapshotManager(tmp_path)
        index, hit = manager.build_or_load_sharded(
            graph, params, transition=matrix, n_shards=4, memory_budget=0
        )
        assert not hit
        assert all(shard.backing == "memmap" for shard in index.shards)
        again, hit = manager.build_or_load_sharded(
            graph, params, transition=matrix, n_shards=4, memory_budget=0
        )
        assert hit
        for a, b in zip(index.shards, again.shards):
            np.testing.assert_array_equal(
                np.asarray(a.columns.lower), np.asarray(b.columns.lower)
            )

    def test_ram_build_archives_layout_for_next_start(self, sharded_setup, tmp_path):
        graph, matrix, params, _ = sharded_setup
        manager = SnapshotManager(tmp_path)
        _, hit = manager.build_or_load_sharded(
            graph, params, transition=matrix, n_shards=3
        )
        assert not hit
        _, hit = manager.build_or_load_sharded(
            graph, params, transition=matrix, n_shards=3
        )
        assert hit

    def test_different_shard_counts_coexist(self, sharded_setup, tmp_path):
        graph, matrix, params, _ = sharded_setup
        manager = SnapshotManager(tmp_path)
        manager.build_or_load_sharded(graph, params, transition=matrix, n_shards=2)
        _, hit = manager.build_or_load_sharded(
            graph, params, transition=matrix, n_shards=5
        )
        assert not hit  # a different partitioning is a different layout

    def test_store_dispatches_sharded_layout(self, sharded_setup, tmp_path):
        graph, matrix, params, _ = sharded_setup
        manager = SnapshotManager(tmp_path)
        index, _ = manager.build_or_load_sharded(
            graph, params, transition=matrix, n_shards=3
        )
        path = manager.store(index, graph, transition=matrix)
        assert path.is_dir()
        loaded = ShardedReverseTopKIndex.load(path, memory_budget=0)
        assert loaded.n_shards == 3


class TestShardedStaticService:
    @pytest.mark.parametrize("backend", ["thread", "process"])
    def test_answers_match_direct_engine(self, sharded_setup, tmp_path, backend):
        graph, matrix, params, reference = sharded_setup
        config = ServiceConfig(
            cache_capacity=32, max_batch_size=2, n_workers=2, backend=backend
        )
        with ReverseTopKService.from_graph(
            graph,
            params,
            snapshot_dir=tmp_path,
            transition=matrix,
            n_shards=4,
            memory_budget=0,
            scan_workers=2,
            config=config,
        ) as service:
            served = service.serve(REQUESTS)
            for (query, k), result in zip(REQUESTS, served):
                direct = reference.query(query, k, update_index=False)
                np.testing.assert_array_equal(result.nodes, direct.nodes)
            service.engine.close()

    def test_memory_budget_without_snapshot_dir_raises(self, sharded_setup):
        graph, matrix, params, _ = sharded_setup
        with pytest.raises(ValueError):
            ReverseTopKService.from_graph(
                graph,
                params,
                transition=matrix,
                n_shards=4,
                memory_budget=0,  # memmap needed but nowhere to put the layout
            )

    def test_sharding_knobs_without_n_shards_raise(self, sharded_setup, tmp_path):
        # Regression: memory_budget/scan_workers used to be silently dropped
        # when n_shards was omitted, handing the caller a full-RAM monolithic
        # engine instead of the out-of-core serving they asked for.
        graph, matrix, params, _ = sharded_setup
        with pytest.raises(ValueError):
            ReverseTopKService.from_graph(
                graph,
                params,
                transition=matrix,
                snapshot_dir=tmp_path,
                memory_budget=0,
            )
        with pytest.raises(ValueError):
            ReverseTopKService.from_graph(
                graph, params, transition=matrix, scan_workers=4
            )

    def test_warm_start_from_sharded_layout(self, sharded_setup, tmp_path):
        graph, matrix, params, _ = sharded_setup
        cold = ReverseTopKService.from_graph(
            graph, params, snapshot_dir=tmp_path, transition=matrix, n_shards=3
        )
        assert not cold.warm_started
        cold.close()
        warm = ReverseTopKService.from_graph(
            graph, params, snapshot_dir=tmp_path, transition=matrix, n_shards=3
        )
        assert warm.warm_started
        warm.close()

    def test_refine_purges_stranded_generation(self, sharded_setup, tmp_path):
        graph, matrix, params, _ = sharded_setup
        with ReverseTopKService.from_graph(
            graph,
            params,
            snapshot_dir=tmp_path,
            transition=matrix,
            n_shards=3,
            config=ServiceConfig(cache_capacity=32),
        ) as service:
            service.serve(REQUESTS)
            cached_before = service._cache.stats().size
            assert cached_before > 0
            # Force a write-back so the version actually bumps, then refine
            # (which purges under the post-bump version).
            service.engine.index.sync_state(0)
            service.refine(5, 6)
            stats = service._cache.stats()
            assert stats.purged >= cached_before


class TestConcurrentLazyOpen:
    def test_many_threads_share_one_cold_memmap_engine(self, sharded_setup, tmp_path):
        # Regression for the lazy-open publish order: concurrent first-touch
        # scans of the same cold shard must never observe a half-initialised
        # columnar view.
        import threading

        from repro.core import ShardedReverseTopKEngine

        graph, matrix, params, reference = sharded_setup
        manager = SnapshotManager(tmp_path)
        manager.build_or_load_sharded(
            graph, params, transition=matrix, n_shards=6, memory_budget=0
        )
        expected = {
            query: reference.query(query, 5, update_index=False).nodes
            for query in range(0, 140, 17)
        }
        for _ in range(3):
            cold, _ = manager.build_or_load_sharded(
                graph, params, transition=matrix, n_shards=6, memory_budget=0
            )
            engine = ShardedReverseTopKEngine(matrix, cold, scan_workers=4)
            errors = []

            def worker(query):
                try:
                    result = engine.query_many_readonly([query], 5)[0]
                    np.testing.assert_array_equal(result.nodes, expected[query])
                except Exception as exc:  # noqa: BLE001 - collected for assert
                    errors.append(exc)

            threads = [
                threading.Thread(target=worker, args=(query,)) for query in expected
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            engine.close()
            assert not errors, errors


class TestShardedDynamicService:
    def test_updates_purge_cache_and_match_fresh_build(self, sharded_setup, tmp_path):
        graph, _, params, _ = sharded_setup
        with DynamicReverseTopKService.from_graph(
            graph,
            params,
            snapshot_dir=tmp_path,
            n_shards=3,
            config=ServiceConfig(cache_capacity=32),
        ) as service:
            service.serve(REQUESTS)
            stranded = service._cache.stats().size
            assert stranded > 0
            report = service.apply_updates(
                [GraphUpdate.add(3, 77), GraphUpdate.add(10, 120)]
            )
            assert report.changed
            stats = service._cache.stats()
            assert stats.purged == stranded  # whole dead generation dropped
            new_graph = service.graph.materialize()
            fresh = ReverseTopKEngine.build(new_graph, params)
            for query, k in REQUESTS:
                a = service.query(query, k)
                b = fresh.query(query, k, update_index=False)
                np.testing.assert_array_equal(a.nodes, b.nodes)

    def test_post_update_layout_warm_starts(self, sharded_setup, tmp_path):
        graph, _, params, _ = sharded_setup
        with DynamicReverseTopKService.from_graph(
            graph, params, snapshot_dir=tmp_path, n_shards=3
        ) as service:
            service.apply_updates([GraphUpdate.add(7, 99)])
            new_graph = service.graph.materialize()
        warm = DynamicReverseTopKService.from_graph(
            new_graph, params, snapshot_dir=tmp_path, n_shards=3
        )
        assert warm.warm_started
        warm.close()


class TestFreshProcessSmoke:
    def test_memmap_layout_loads_in_fresh_process(self, sharded_setup, tmp_path):
        """A cold replica must be able to serve from the layout alone."""
        graph, matrix, params, reference = sharded_setup
        manager = SnapshotManager(tmp_path)
        index, _ = manager.build_or_load_sharded(
            graph, params, transition=matrix, n_shards=4, memory_budget=0
        )
        layout = index.directory
        assert layout is not None
        expected = reference.query(11, 5, update_index=False)
        script = f"""
import numpy as np
from repro.core import ShardedReverseTopKIndex, ShardedReverseTopKEngine
from repro.graph import copying_web_graph, transition_matrix

graph = copying_web_graph(140, out_degree=4, seed=23)
matrix = transition_matrix(graph)
index = ShardedReverseTopKIndex.load({str(layout)!r}, memory_budget=0)
assert all(shard.backing == "memmap" for shard in index.shards)
engine = ShardedReverseTopKEngine(matrix, index)
result = engine.query(11, 5, update_index=False)
print("NODES:" + ",".join(str(int(n)) for n in result.nodes))
"""
        src = str(Path(__file__).resolve().parents[2] / "src")
        proc = subprocess.run(
            [sys.executable, "-c", script],
            capture_output=True,
            text=True,
            env={"PYTHONPATH": src, "PATH": "/usr/bin:/bin:/usr/local/bin"},
        )
        assert proc.returncode == 0, proc.stderr
        line = [l for l in proc.stdout.splitlines() if l.startswith("NODES:")][0]
        nodes = [int(x) for x in line[len("NODES:"):].split(",") if x]
        np.testing.assert_array_equal(np.asarray(nodes), expected.nodes)
