"""Tests for the version-keyed LRU result cache."""

import threading

import pytest

from repro.serving import ResultCache


def _key(query, k=10, version=0):
    return (query, k, version)


class TestResultCache:
    def test_miss_then_hit(self):
        cache = ResultCache(4)
        assert cache.get(_key(1)) is None
        cache.put(_key(1), "r1")
        assert cache.get(_key(1)) == "r1"
        stats = cache.stats()
        assert stats.hits == 1
        assert stats.misses == 1
        assert stats.hit_rate == 0.5

    def test_lru_eviction_order(self):
        cache = ResultCache(2)
        cache.put(_key(1), "r1")
        cache.put(_key(2), "r2")
        cache.get(_key(1))  # touch 1 so 2 becomes LRU
        cache.put(_key(3), "r3")
        assert cache.get(_key(2)) is None
        assert cache.get(_key(1)) == "r1"
        assert cache.get(_key(3)) == "r3"
        assert cache.stats().evictions == 1

    def test_put_existing_key_updates_value(self):
        cache = ResultCache(2)
        cache.put(_key(1), "old")
        cache.put(_key(1), "new")
        assert len(cache) == 1
        assert cache.get(_key(1)) == "new"

    def test_version_in_key_separates_entries(self):
        cache = ResultCache(4)
        cache.put(_key(1, version=0), "v0")
        assert cache.get(_key(1, version=1)) is None
        cache.put(_key(1, version=1), "v1")
        assert cache.get(_key(1, version=0)) == "v0"
        assert cache.get(_key(1, version=1)) == "v1"

    def test_zero_capacity_disables_caching(self):
        cache = ResultCache(0)
        cache.put(_key(1), "r1")
        assert cache.get(_key(1)) is None
        assert len(cache) == 0

    def test_negative_capacity_rejected(self):
        with pytest.raises(ValueError):
            ResultCache(-1)

    def test_clear_resets_entries_and_counters(self):
        cache = ResultCache(4)
        cache.put(_key(1), "r1")
        cache.get(_key(1))
        cache.clear()
        assert len(cache) == 0
        stats = cache.stats()
        assert (stats.hits, stats.misses, stats.insertions) == (0, 0, 0)

    def test_contains(self):
        cache = ResultCache(4)
        cache.put(_key(9), "r")
        assert _key(9) in cache
        assert _key(8) not in cache

    def test_concurrent_access_is_safe(self):
        cache = ResultCache(64)
        errors = []

        def worker(offset):
            try:
                for i in range(200):
                    key = _key((offset * 200 + i) % 100)
                    cache.put(key, i)
                    cache.get(key)
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        threads = [threading.Thread(target=worker, args=(t,)) for t in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors
        assert len(cache) <= 64
