"""Tests for the version-keyed LRU result cache."""

import threading

import pytest

from repro.serving import ResultCache


def _key(query, k=10, version=0):
    return (query, k, version)


class TestResultCache:
    def test_miss_then_hit(self):
        cache = ResultCache(4)
        assert cache.get(_key(1)) is None
        cache.put(_key(1), "r1")
        assert cache.get(_key(1)) == "r1"
        stats = cache.stats()
        assert stats.hits == 1
        assert stats.misses == 1
        assert stats.hit_rate == 0.5

    def test_lru_eviction_order(self):
        cache = ResultCache(2)
        cache.put(_key(1), "r1")
        cache.put(_key(2), "r2")
        cache.get(_key(1))  # touch 1 so 2 becomes LRU
        cache.put(_key(3), "r3")
        assert cache.get(_key(2)) is None
        assert cache.get(_key(1)) == "r1"
        assert cache.get(_key(3)) == "r3"
        assert cache.stats().evictions == 1

    def test_put_existing_key_updates_value(self):
        cache = ResultCache(2)
        cache.put(_key(1), "old")
        cache.put(_key(1), "new")
        assert len(cache) == 1
        assert cache.get(_key(1)) == "new"

    def test_version_in_key_separates_entries(self):
        cache = ResultCache(4)
        cache.put(_key(1, version=0), "v0")
        assert cache.get(_key(1, version=1)) is None
        cache.put(_key(1, version=1), "v1")
        assert cache.get(_key(1, version=0)) == "v0"
        assert cache.get(_key(1, version=1)) == "v1"

    def test_zero_capacity_disables_caching(self):
        cache = ResultCache(0)
        cache.put(_key(1), "r1")
        assert cache.get(_key(1)) is None
        assert len(cache) == 0

    def test_negative_capacity_rejected(self):
        with pytest.raises(ValueError):
            ResultCache(-1)

    def test_clear_resets_entries_and_counters(self):
        cache = ResultCache(4)
        cache.put(_key(1), "r1")
        cache.get(_key(1))
        cache.clear()
        assert len(cache) == 0
        stats = cache.stats()
        assert (stats.hits, stats.misses, stats.insertions) == (0, 0, 0)

    def test_contains(self):
        cache = ResultCache(4)
        cache.put(_key(9), "r")
        assert _key(9) in cache
        assert _key(8) not in cache

    def test_purge_versions_below_drops_only_dead_generations(self):
        cache = ResultCache(8)
        cache.put(_key(1, version=0), "old-a")
        cache.put(_key(2, version=0), "old-b")
        cache.put(_key(1, version=1), "live")
        cache.put("foreign-key", "kept")  # non-CacheKey entries are untouched
        dropped = cache.purge_versions_below(1)
        assert dropped == 2
        assert cache.get(_key(1, version=1)) == "live"
        assert cache.get("foreign-key") == "kept"
        assert cache.get(_key(1, version=0)) is None
        stats = cache.stats()
        assert stats.purged == 2
        assert stats.size == 2

    def test_purge_is_idempotent_and_counts_accumulate(self):
        cache = ResultCache(8)
        cache.put(_key(1, version=0), "old")
        assert cache.purge_versions_below(1) == 1
        assert cache.purge_versions_below(1) == 0
        cache.put(_key(1, version=1), "also-old-soon")
        assert cache.purge_versions_below(2) == 1
        assert cache.stats().purged == 2

    def test_stranded_generation_is_pinned_forever_without_purge(self):
        # Regression for the dead-generation leak: a version bump strands a
        # full generation of unmatchable keys.  LRU aging only removes them
        # under *insertion* pressure — a hot working set smaller than the
        # capacity never generates any, so without the purge hook the dead
        # entries (each pinning a heavyweight QueryResult) stay resident
        # indefinitely.
        capacity = 8
        leaky = ResultCache(capacity)
        purged = ResultCache(capacity)
        for cache in (leaky, purged):
            for query in range(capacity):
                cache.put(_key(query, version=0), f"v0-{query}")
        # The index moves to version 1: generation 0 is dead.
        purged.purge_versions_below(1)
        # Steady state: a small hot set, served mostly from cache — barely
        # any insertions, so LRU aging never fires.
        for _ in range(10):
            for cache in (leaky, purged):
                if cache.get(_key(0, version=1)) is None:
                    cache.put(_key(0, version=1), "live-0")
                if cache.get(_key(1, version=1)) is None:
                    cache.put(_key(1, version=1), "live-1")
        # The purged cache holds exactly the live working set; the leaky one
        # still pins six dead results that can never be matched again.
        assert purged.stats().size == 2
        assert leaky.stats().size == capacity
        dead_still_resident = sum(
            1 for query in range(capacity) if _key(query, version=0) in leaky
        )
        assert dead_still_resident == capacity - 2

    def test_concurrent_access_is_safe(self):
        cache = ResultCache(64)
        errors = []

        def worker(offset):
            try:
                for i in range(200):
                    key = _key((offset * 200 + i) % 100)
                    cache.put(key, i)
                    cache.get(key)
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        threads = [threading.Thread(target=worker, args=(t,)) for t in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors
        assert len(cache) <= 64
