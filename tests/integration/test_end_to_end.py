"""Integration tests: full pipelines across modules, mirroring real usage."""

import numpy as np

from repro import (
    IndexParams,
    ReverseTopKEngine,
    proximity_to_node,
    transition_matrix,
)
from repro.core import ReverseTopKIndex, build_index
from repro.core.baseline import FeasibleBruteForce
from repro.graph import datasets, read_edge_list, write_edge_list
from repro.rwr import ProximityLU
from repro.workloads import uniform_query_workload


class TestFullPipeline:
    def test_dataset_to_query_pipeline(self, reverse_topk_checker):
        """Load a dataset stand-in, build the index, query, verify vs oracle."""
        graph = datasets.web_stanford_cs(scale=0.04, seed=0)
        matrix = transition_matrix(graph)
        exact = ProximityLU(matrix).matrix()
        params = IndexParams(capacity=12, hub_budget=4)
        engine = ReverseTopKEngine.build(graph, params, transition=matrix)
        workload = uniform_query_workload(graph, 8, seed=1)
        for query in workload:
            result = engine.query(query, 5)
            reverse_topk_checker(result.nodes, exact, query, 5)

    def test_save_query_reload_cycle(self, tmp_path, reverse_topk_checker):
        """Index persistence in the middle of a query workload keeps answers stable."""
        graph = datasets.epinions(scale=0.02, seed=2)
        matrix = transition_matrix(graph)
        exact = ProximityLU(matrix).matrix()
        params = IndexParams(capacity=10, hub_budget=4)
        engine = ReverseTopKEngine.build(graph, params, transition=matrix)
        engine.query(0, 5)  # refine a little
        path = tmp_path / "index.npz"
        engine.index.save(path)

        reloaded = ReverseTopKEngine(matrix, ReverseTopKIndex.load(path))
        for query in (1, 3, 7):
            result = reloaded.query(query, 5)
            reverse_topk_checker(result.nodes, exact, query, 5)

    def test_edge_list_round_trip_preserves_answers(self, tmp_path, small_web_graph):
        """Export the graph, re-import it, and check queries are unchanged."""
        path = tmp_path / "graph.txt"
        write_edge_list(small_web_graph, path)
        reloaded = read_edge_list(path)
        params = IndexParams(capacity=10, hub_budget=3)
        original_engine = ReverseTopKEngine.build(small_web_graph, params)
        reloaded_engine = ReverseTopKEngine.build(reloaded, params)
        for query in (0, 11, 29):
            a = set(original_engine.query(query, 5).nodes.tolist())
            b = set(reloaded_engine.query(query, 5).nodes.tolist())
            assert a == b

    def test_workload_sequence_with_updates_stays_correct(
        self, small_web_graph, small_transition, small_exact_matrix, reverse_topk_checker
    ):
        """A long update-mode workload never degrades correctness (Figure 7 setting)."""
        params = IndexParams(capacity=12, hub_budget=4)
        engine = ReverseTopKEngine.build(
            small_web_graph, params, transition=small_transition
        )
        workload = uniform_query_workload(small_web_graph, 25, seed=3)
        for query in workload:
            result = engine.query(query, 5, update_index=True)
            reverse_topk_checker(result.nodes, small_exact_matrix, query, 5)

    def test_refinement_makes_index_monotonically_tighter(
        self, small_web_graph, small_transition
    ):
        params = IndexParams(capacity=12, hub_budget=4)
        engine = ReverseTopKEngine.build(
            small_web_graph, params, transition=small_transition
        )
        before = engine.index.lower_bound_matrix().copy()
        for query in uniform_query_workload(small_web_graph, 10, seed=4):
            engine.query(query, 8, update_index=True)
        after = engine.index.lower_bound_matrix()
        assert np.all(after >= before - 1e-12)

    def test_weighted_graph_pipeline(self, weighted_coauthor_graph, reverse_topk_checker):
        """Weighted transition matrix end-to-end (the Table 3 setting)."""
        from repro.graph import weighted_transition_matrix

        graph, _ = weighted_coauthor_graph
        matrix = weighted_transition_matrix(graph)
        exact = ProximityLU(matrix).matrix()
        params = IndexParams(capacity=10, hub_budget=4)
        engine = ReverseTopKEngine.build(graph, params, transition=matrix)
        for query in (0, 10, 30):
            result = engine.query(query, 4)
            reverse_topk_checker(result.nodes, exact, query, 4)

    def test_engine_agrees_with_fbf_on_clear_cases(
        self, small_web_graph, small_transition, small_exact_matrix, reverse_topk_checker
    ):
        params = IndexParams(capacity=12, hub_budget=4)
        engine = ReverseTopKEngine.build(
            small_web_graph, params, transition=small_transition
        )
        fbf = FeasibleBruteForce(small_transition, capacity=12)
        for query in (5, 25, 45):
            reverse_topk_checker(engine.query(query, 6).nodes, small_exact_matrix, query, 6)
            reverse_topk_checker(fbf.query(query, 6), small_exact_matrix, query, 6)

    def test_public_api_importable_from_top_level(self):
        import repro

        assert hasattr(repro, "ReverseTopKEngine")
        assert hasattr(repro, "IndexParams")
        assert hasattr(repro, "proximity_to_node")
        assert repro.__version__


class TestScalingBehaviour:
    def test_query_cheaper_than_offline_full_matrix(self):
        """The core value proposition: one query ≪ computing all proximity vectors."""
        graph = datasets.web_stanford_cs(scale=0.08, seed=1)
        matrix = transition_matrix(graph)
        params = IndexParams(capacity=20, hub_budget=8)
        engine = ReverseTopKEngine.build(graph, params, transition=matrix)
        result = engine.query(0, 10)
        # PMPN cost dominates a query; it must touch far fewer proximity vector
        # computations than the n power-method runs of the brute force.
        assert result.statistics.n_refined_nodes < graph.n_nodes / 4

    def test_index_smaller_than_full_matrix(self):
        graph = datasets.web_stanford_cs(scale=0.08, seed=1)
        matrix = transition_matrix(graph)
        params = IndexParams(capacity=20, hub_budget=8)
        index = build_index(graph, params, transition=matrix)
        full_matrix_bytes = graph.n_nodes * graph.n_nodes * 8
        assert index.total_bytes() < full_matrix_bytes
