"""Unit tests for the DynamicGraph delta overlay and GraphUpdate."""

import pytest

from repro.dynamic import DynamicGraph, GraphUpdate
from repro.exceptions import GraphError
from repro.graph import from_edges, ring_graph


@pytest.fixture()
def dynamic() -> DynamicGraph:
    return DynamicGraph(from_edges([(0, 1), (1, 2), (2, 0), (2, 3)], n_nodes=5))


class TestGraphUpdate:
    def test_constructors(self):
        assert GraphUpdate.add(1, 2).op == "add"
        assert GraphUpdate.add(1, 2).weight == 1.0
        assert GraphUpdate.remove(1, 2).op == "remove"
        assert GraphUpdate.set_weight(1, 2, 3.0).weight == 3.0

    def test_rejects_unknown_op(self):
        with pytest.raises(GraphError):
            GraphUpdate("merge", 0, 1)

    def test_rejects_non_positive_weight(self):
        with pytest.raises(GraphError):
            GraphUpdate.add(0, 1, 0.0)
        with pytest.raises(GraphError):
            GraphUpdate.set_weight(0, 1, -1.0)

    def test_coerce_accepts_tuples(self):
        update = GraphUpdate.coerce(("add", 0, 1, 2.0))
        assert update == GraphUpdate.add(0, 1, 2.0)
        assert GraphUpdate.coerce(update) is update


class TestOverlayReads:
    def test_reads_pass_through_before_mutations(self, dynamic):
        assert dynamic.has_edge(0, 1)
        assert not dynamic.has_edge(1, 0)
        assert dynamic.edge_weight(2, 3) == 1.0
        assert dynamic.n_nodes == 5
        assert dynamic.n_edges == 4

    def test_overlay_shadows_base(self, dynamic):
        dynamic.set_weight(0, 1, 5.0)
        dynamic.remove_edge(1, 2)
        dynamic.add_edge(3, 4)
        assert dynamic.edge_weight(0, 1) == 5.0
        assert not dynamic.has_edge(1, 2)
        assert dynamic.has_edge(3, 4)
        # the base stays frozen until compaction
        assert dynamic.base.edge_weight(0, 1) == 1.0
        assert dynamic.base.has_edge(1, 2)

    def test_effective_edge_count(self, dynamic):
        dynamic.add_edge(3, 4)
        assert dynamic.n_edges == 5
        dynamic.remove_edge(0, 1)
        assert dynamic.n_edges == 4
        dynamic.set_weight(2, 0, 9.0)  # weight change: no count change
        assert dynamic.n_edges == 4


class TestMutationValidation:
    def test_add_existing_edge_rejected(self, dynamic):
        with pytest.raises(GraphError, match="already exists"):
            dynamic.add_edge(0, 1)

    def test_add_buffered_edge_rejected(self, dynamic):
        dynamic.add_edge(3, 4)
        with pytest.raises(GraphError, match="already exists"):
            dynamic.add_edge(3, 4)

    def test_remove_missing_edge_rejected(self, dynamic):
        with pytest.raises(GraphError, match="missing edge"):
            dynamic.remove_edge(4, 0)

    def test_remove_already_removed_edge_rejected(self, dynamic):
        dynamic.remove_edge(0, 1)
        with pytest.raises(GraphError, match="missing edge"):
            dynamic.remove_edge(0, 1)

    def test_set_weight_on_missing_edge_rejected(self, dynamic):
        with pytest.raises(GraphError, match="missing edge"):
            dynamic.set_weight(4, 0, 2.0)

    def test_non_positive_weights_rejected(self, dynamic):
        with pytest.raises(GraphError):
            dynamic.add_edge(3, 4, 0.0)
        with pytest.raises(GraphError):
            dynamic.set_weight(0, 1, -2.0)

    def test_out_of_range_nodes_rejected(self, dynamic):
        with pytest.raises(Exception):
            dynamic.add_edge(0, 99)


class TestElision:
    def test_add_then_remove_is_a_noop_entry(self, dynamic):
        dynamic.add_edge(3, 4)
        assert dynamic.pending_updates == 1
        dynamic.remove_edge(3, 4)
        assert dynamic.pending_updates == 0
        # ...but the touched set still reports the source conservatively
        assert 3 in dynamic.touched_sources

    def test_weight_restored_to_base_elides(self, dynamic):
        dynamic.set_weight(0, 1, 5.0)
        dynamic.set_weight(0, 1, 1.0)
        assert dynamic.pending_updates == 0
        assert dynamic.materialize() == dynamic.base


class TestMaterializationAndCompaction:
    def test_materialize_reflects_overlay(self, dynamic):
        dynamic.add_edge(3, 4, 2.0)
        dynamic.remove_edge(1, 2)
        graph = dynamic.materialize()
        assert graph.has_edge(3, 4)
        assert graph.edge_weight(3, 4) == 2.0
        assert not graph.has_edge(1, 2)
        assert graph.n_nodes == 5

    def test_materialize_is_cached(self, dynamic):
        dynamic.add_edge(3, 4)
        assert dynamic.materialize() is dynamic.materialize()
        dynamic.remove_edge(0, 1)
        assert dynamic.materialize().n_edges == 4

    def test_compact_folds_overlay_into_base(self, dynamic):
        dynamic.add_edge(3, 4)
        base = dynamic.compact()
        assert dynamic.pending_updates == 0
        assert dynamic.base is base
        assert base.has_edge(3, 4)

    def test_auto_compaction_at_threshold(self):
        dynamic = DynamicGraph(ring_graph(20), compaction_threshold=3)
        dynamic.add_edge(0, 5)
        dynamic.add_edge(1, 6)
        assert dynamic.pending_updates == 2
        dynamic.add_edge(2, 7)  # hits the threshold
        assert dynamic.pending_updates == 0
        assert dynamic.base.has_edge(2, 7)
        # touched sources survive auto-compaction
        assert dynamic.touched_sources.tolist() == [0, 1, 2]

    def test_drain_returns_graph_and_touched(self, dynamic):
        dynamic.add_edge(3, 4)
        dynamic.remove_edge(0, 1)
        graph, touched = dynamic.drain()
        assert graph.has_edge(3, 4) and not graph.has_edge(0, 1)
        assert touched.tolist() == [0, 3]
        assert dynamic.pending_updates == 0
        # a second drain reports nothing new
        graph_again, touched_again = dynamic.drain()
        assert graph_again == graph
        assert touched_again.size == 0

    def test_apply_updates_batch(self, dynamic):
        count = dynamic.apply_updates(
            [
                GraphUpdate.add(3, 4),
                ("remove", 1, 2),
                GraphUpdate.set_weight(2, 0, 4.0),
            ]
        )
        assert count == 3
        graph = dynamic.materialize()
        assert graph.has_edge(3, 4)
        assert not graph.has_edge(1, 2)
        assert graph.edge_weight(2, 0) == 4.0

    def test_repr(self, dynamic):
        dynamic.add_edge(3, 4)
        assert "pending=1" in repr(dynamic)


class TestNonFiniteWeights:
    def test_update_constructors_reject_nan(self):
        with pytest.raises(GraphError, match="finite"):
            GraphUpdate.add(0, 1, float("nan"))
        with pytest.raises(GraphError, match="finite"):
            GraphUpdate.set_weight(0, 1, float("inf"))

    def test_mutators_reject_nan(self, dynamic):
        with pytest.raises(GraphError, match="finite"):
            dynamic.add_edge(3, 4, float("nan"))
        with pytest.raises(GraphError, match="finite"):
            dynamic.set_weight(0, 1, float("inf"))
        assert dynamic.pending_updates == 0
