"""Unit tests for IndexMaintainer: the maintained-equals-fresh invariant.

The contract under test: after ``apply()``, the maintained engine is
bit-identical to an engine built from scratch on the current graph — node
states, columnar views, query answers and statistics counters — as long as
no query refinement was persisted in between (and answer-identical even
with persisted refinements).
"""

import numpy as np
import pytest

from repro.core import IndexParams, ReverseTopKEngine, build_index
from repro.dynamic import DynamicGraph, IndexMaintainer
from repro.graph import copying_web_graph, erdos_renyi_graph, transition_matrix

PARAMS = IndexParams(capacity=8, hub_budget=2)


def build_engine(graph, params=PARAMS, hubs=None):
    matrix = transition_matrix(graph)
    index = build_index(
        graph, params.for_graph(graph.n_nodes), transition=matrix, hubs=hubs
    )
    return ReverseTopKEngine(matrix, index)


def pick_hub_stable_insertion(graph, params=PARAMS, *, require_non_hub=False):
    """Find an (u, v) whose insertion keeps the degree-based hub set intact.

    Degree-based hub selection is sensitive to single-edge degree bumps on
    small graphs; tests targeting the *incremental* path search for an edge
    that leaves the hub ranking untouched.
    """
    from repro.core.hubs import select_hubs_by_degree

    effective = params.for_graph(graph.n_nodes)
    hubs = select_hubs_by_degree(graph, effective.hub_budget)
    for u in range(graph.n_nodes):
        if require_non_hub and u in hubs:
            continue
        for v in range(graph.n_nodes):
            if u == v or graph.has_edge(u, v):
                continue
            candidate = graph.with_edges(added=[(u, v)])
            if select_hubs_by_degree(candidate, effective.hub_budget).nodes == hubs.nodes:
                return u, v
    raise AssertionError("no hub-stable insertion found for this graph")


def assert_engines_bit_identical(maintained, fresh):
    assert maintained.index.hubs.nodes == fresh.index.hubs.nodes
    np.testing.assert_array_equal(
        maintained.transition.toarray(), fresh.transition.toarray()
    )
    np.testing.assert_array_equal(
        maintained.index.hub_deficit, fresh.index.hub_deficit
    )
    np.testing.assert_array_equal(
        maintained.index.hub_matrix.toarray(), fresh.index.hub_matrix.toarray()
    )
    for (node, kept), (_, rebuilt) in zip(
        maintained.index.states(), fresh.index.states()
    ):
        assert kept.residual == rebuilt.residual, node
        assert kept.retained == rebuilt.retained, node
        assert kept.hub_ink == rebuilt.hub_ink, node
        assert kept.iterations == rebuilt.iterations, node
        assert kept.is_hub == rebuilt.is_hub, node
        np.testing.assert_array_equal(kept.lower_bounds, rebuilt.lower_bounds)
    np.testing.assert_array_equal(
        maintained.index.columns.lower, fresh.index.columns.lower
    )
    np.testing.assert_array_equal(
        maintained.index.columns.residual_mass, fresh.index.columns.residual_mass
    )
    np.testing.assert_array_equal(
        maintained.index.columns.is_exact, fresh.index.columns.is_exact
    )


def assert_answers_identical(maintained, fresh, k):
    for query in range(maintained.n_nodes):
        a = maintained.query(query, k, update_index=False)
        b = fresh.query(query, k, update_index=False)
        np.testing.assert_array_equal(a.nodes, b.nodes)
        np.testing.assert_array_equal(
            a.proximities_to_query, b.proximities_to_query
        )


class TestIncrementalMaintenance:
    def test_insertion_maintains_bit_identity(self):
        graph = copying_web_graph(60, out_degree=3, seed=4)
        engine = build_engine(graph)
        maintainer = IndexMaintainer(engine, rebuild_ratio=1.0)
        dynamic = DynamicGraph(graph)
        dynamic.add_edge(*pick_hub_stable_insertion(graph))
        new_graph, touched = dynamic.drain()
        report = maintainer.apply(new_graph, touched)
        assert report.changed and not report.full_rebuild
        assert report.n_changed_columns == 1
        assert_engines_bit_identical(engine, build_engine(new_graph))
        assert_answers_identical(engine, build_engine(new_graph), k=4)

    def test_deletion_maintains_bit_identity(self):
        graph = copying_web_graph(60, out_degree=3, seed=5)
        engine = build_engine(graph)
        maintainer = IndexMaintainer(engine, rebuild_ratio=1.0)
        dynamic = DynamicGraph(graph)
        u, v, _ = next(graph.edges())
        dynamic.remove_edge(u, v)
        new_graph, touched = dynamic.drain()
        maintainer.apply(new_graph, touched)
        # pinned policy: equivalence is against a build with the same hubs
        fresh = build_engine(new_graph, hubs=engine.index.hubs)
        assert_engines_bit_identical(engine, fresh)

    def test_version_bumped_exactly_once_per_effective_apply(self):
        graph = copying_web_graph(40, out_degree=3, seed=6)
        engine = build_engine(graph)
        maintainer = IndexMaintainer(engine, rebuild_ratio=1.0)
        before = engine.index.version
        dynamic = DynamicGraph(graph)
        dynamic.add_edge(1, 30)
        dynamic.add_edge(2, 31)
        new_graph, touched = dynamic.drain()
        maintainer.apply(new_graph, touched)
        assert engine.index.version == before + 1

    def test_weight_change_under_unweighted_walk_is_noop(self):
        graph = copying_web_graph(40, out_degree=3, seed=7)
        engine = build_engine(graph)
        maintainer = IndexMaintainer(engine, rebuild_ratio=1.0)
        version = engine.index.version
        dynamic = DynamicGraph(graph)
        u, v, _ = next(graph.edges())
        dynamic.set_weight(u, v, 7.0)
        new_graph, touched = dynamic.drain()
        report = maintainer.apply(new_graph, touched)
        assert not report.changed
        assert report.n_changed_columns == 0
        assert engine.index.version == version  # cache generation stays live

    def test_empty_touched_set_is_noop(self):
        graph = copying_web_graph(40, out_degree=3, seed=8)
        engine = build_engine(graph)
        maintainer = IndexMaintainer(engine)
        report = maintainer.apply(graph, [])
        assert not report.changed and report.n_touched_sources == 0

    def test_multiple_sequential_applies(self):
        graph = copying_web_graph(50, out_degree=3, seed=9)
        engine = build_engine(graph)
        maintainer = IndexMaintainer(engine, rebuild_ratio=1.0)
        dynamic = DynamicGraph(graph)
        rng = np.random.default_rng(1)
        for _ in range(4):
            for _ in range(2):
                u = int(rng.integers(0, 50))
                v = int(rng.integers(0, 50))
                if u != v and not dynamic.has_edge(u, v):
                    dynamic.add_edge(u, v)
            new_graph, touched = dynamic.drain()
            maintainer.apply(new_graph, touched)
        fresh = build_engine(dynamic.base, hubs=engine.index.hubs)
        assert_engines_bit_identical(engine, fresh)
        assert_answers_identical(engine, fresh, k=5)


class TestEscapeHatches:
    def test_staleness_past_ratio_triggers_full_rebuild(self):
        graph = copying_web_graph(60, out_degree=4, seed=10)
        engine = build_engine(graph)
        maintainer = IndexMaintainer(engine, rebuild_ratio=1e-9)
        dynamic = DynamicGraph(graph)
        # A non-hub source guarantees at least its own state is invalidated,
        # so any positive staleness trips the tiny rebuild threshold.
        dynamic.add_edge(*pick_hub_stable_insertion(graph, require_non_hub=True))
        new_graph, touched = dynamic.drain()
        report = maintainer.apply(new_graph, touched)
        assert report.staleness > 0
        assert report.full_rebuild
        assert_engines_bit_identical(engine, build_engine(new_graph))

    def test_reselect_policy_rebuilds_on_hub_churn(self):
        # Adding many out-edges to one tail node shifts the degree-based hub
        # selection; the reselect policy must rebuild and land bit-identical
        # to a default from-scratch build.
        graph = erdos_renyi_graph(30, 0.1, seed=3)
        engine = build_engine(graph)
        maintainer = IndexMaintainer(engine, rebuild_ratio=1.0, hub_policy="reselect")
        dynamic = DynamicGraph(graph)
        target = 7
        added = 0
        for v in range(30):
            if v != target and not dynamic.has_edge(target, v):
                dynamic.add_edge(target, v)
                added += 1
        assert added > 10
        new_graph, touched = dynamic.drain()
        report = maintainer.apply(new_graph, touched)
        if report.hub_set_changed:  # overwhelmingly likely with these seeds
            assert report.full_rebuild
        assert_engines_bit_identical(engine, build_engine(new_graph))

    def test_pinned_policy_stays_incremental_under_hub_churn(self):
        # The same hub-churning mutation under the default pinned policy:
        # no rebuild, hubs kept, and answers still exactly match a default
        # from-scratch build (hubs never affect answers, only bounds).
        graph = erdos_renyi_graph(30, 0.1, seed=3)
        engine = build_engine(graph)
        hubs_before = engine.index.hubs.nodes
        maintainer = IndexMaintainer(engine, rebuild_ratio=1.0, hub_policy="pinned")
        dynamic = DynamicGraph(graph)
        target = 7
        for v in range(30):
            if v != target and not dynamic.has_edge(target, v):
                dynamic.add_edge(target, v)
        new_graph, touched = dynamic.drain()
        report = maintainer.apply(new_graph, touched)
        assert not report.full_rebuild
        assert not report.hub_set_changed
        assert engine.index.hubs.nodes == hubs_before
        fresh = build_engine(new_graph, hubs=engine.index.hubs)
        assert_engines_bit_identical(engine, fresh)
        assert_answers_identical(engine, fresh, k=4)

    def test_pinned_staleness_rebuild_keeps_hubs(self):
        graph = erdos_renyi_graph(30, 0.1, seed=3)
        engine = build_engine(graph)
        hubs_before = engine.index.hubs.nodes
        maintainer = IndexMaintainer(engine, rebuild_ratio=1e-9, hub_policy="pinned")
        dynamic = DynamicGraph(graph)
        target = 7
        for v in range(30):
            if v != target and not dynamic.has_edge(target, v):
                dynamic.add_edge(target, v)
        new_graph, touched = dynamic.drain()
        report = maintainer.apply(new_graph, touched)
        assert report.full_rebuild
        # pinned means pinned: even the escape-hatch rebuild reuses the hubs
        assert engine.index.hubs.nodes == hubs_before
        fresh = build_engine(new_graph, hubs=engine.index.hubs)
        assert_engines_bit_identical(engine, fresh)

    def test_unknown_hub_policy_rejected(self):
        graph = copying_web_graph(20, out_degree=2, seed=14)
        with pytest.raises(ValueError):
            IndexMaintainer(build_engine(graph), hub_policy="sticky")

    def test_node_count_mismatch_rejected(self):
        graph = copying_web_graph(30, out_degree=3, seed=11)
        engine = build_engine(graph)
        maintainer = IndexMaintainer(engine)
        with pytest.raises(ValueError):
            maintainer.apply(copying_web_graph(31, out_degree=3, seed=11), [0])

    def test_invalid_rebuild_ratio_rejected(self):
        graph = copying_web_graph(20, out_degree=2, seed=12)
        engine = build_engine(graph)
        with pytest.raises(ValueError):
            IndexMaintainer(engine, rebuild_ratio=1.5)
        with pytest.raises(Exception):
            IndexMaintainer(engine, rebuild_ratio=0.0)


class TestWithPersistedRefinements:
    def test_answers_match_fresh_engine_after_refined_queries(self):
        """update_index=True refinements survive maintenance correctly."""
        graph = copying_web_graph(50, out_degree=3, seed=13)
        engine = build_engine(graph)
        maintainer = IndexMaintainer(engine, rebuild_ratio=1.0)
        dynamic = DynamicGraph(graph)
        rng = np.random.default_rng(2)
        for round_ in range(3):
            # persist refinements into the maintained index
            for query in rng.integers(0, 50, size=5):
                engine.query(int(query), 5, update_index=True)
            u = int(rng.integers(0, 50))
            v = int(rng.integers(0, 50))
            if u != v and not dynamic.has_edge(u, v):
                dynamic.add_edge(u, v)
            new_graph, touched = dynamic.drain()
            maintainer.apply(new_graph, touched)
            fresh = build_engine(dynamic.base, hubs=engine.index.hubs)
            for query in range(50):
                a = engine.query(query, 5, update_index=False)
                b = fresh.query(query, 5, update_index=False)
                np.testing.assert_array_equal(a.nodes, b.nodes)
