"""Maintainer targeted fast path over columnar stores.

When the index keeps its node state in struct-of-arrays form (monolithic
store or sharded columnar shards), the maintainer detects invalidation and
hub-proximity hits with vectorised segment scans and applies the delta via
``apply_updates`` — no full-state materialisation.  The contract: the fast
path is **bit-identical** to the historical object path (same backend) and
to a from-scratch build on the post-churn graph under pinned hubs.
"""

import numpy as np
import pytest

from repro.core import IndexParams
from repro.core.index import ReverseTopKIndex
from repro.core.lbi import build_index
from repro.core.query import ReverseTopKEngine
from repro.core.sharding import ShardedReverseTopKEngine, build_sharded_index
from repro.dynamic.maintainer import IndexMaintainer
from repro.graph.builder import from_edges
from repro.graph.datasets import load_dataset
from repro.graph.transition import transition_matrix

PARAMS = IndexParams(capacity=8, hub_budget=6, backend="vectorized")


@pytest.fixture(scope="module")
def base_graph():
    return load_dataset("web-stanford-cs", scale=0.12)


def mutate(graph, seed, *, from_hub=None):
    """Drop/add a few edges; returns (new_graph, touched_sources)."""
    n = graph.n_nodes
    edges = [(int(s), int(t), float(w)) for s, t, w in graph.edges()]
    rng = np.random.default_rng(seed)
    drop = set(rng.choice(len(edges), size=4, replace=False).tolist())
    kept = [edge for index, edge in enumerate(edges) if index not in drop]
    touched = {edges[index][0] for index in drop}
    for _ in range(4):
        source, target = int(rng.integers(n)), int(rng.integers(n))
        if source != target:
            kept.append((source, target, 1.0))
            touched.add(source)
    if from_hub is not None:
        # An out-edge FROM a hub changes the hub's own transition column,
        # forcing the hub-proximity rematerialisation branch.
        target = int(rng.integers(n))
        if target != from_hub:
            kept.append((from_hub, target, 1.0))
            touched.add(from_hub)
    return from_edges(kept, n_nodes=n), touched


def engines_for(graph):
    """(store-backed engine, object-twin engine, sharded engine) — same backend."""
    matrix = transition_matrix(graph)
    params = PARAMS.for_graph(graph.n_nodes)
    fast_index = build_index(graph, params, transition=matrix)
    assert fast_index.store is not None
    object_twin = ReverseTopKIndex(
        fast_index.params,
        fast_index.hubs,
        fast_index.hub_matrix,
        fast_index.hub_deficit,
        [state for _, state in fast_index.states()],
    )
    assert object_twin.store is None
    sharded = build_sharded_index(
        graph, params, transition=matrix, n_shards=3
    )
    return (
        ReverseTopKEngine(matrix, fast_index),
        ReverseTopKEngine(transition_matrix(graph), object_twin),
        ShardedReverseTopKEngine(transition_matrix(graph), sharded),
    )


def assert_indexes_equal(fast, other):
    np.testing.assert_array_equal(
        np.asarray(fast.columns.lower), np.asarray(other.columns.lower)
    )
    np.testing.assert_array_equal(
        np.asarray(fast.columns.residual_mass),
        np.asarray(other.columns.residual_mass),
    )
    for (node_a, state_a), (node_b, state_b) in zip(fast.states(), other.states()):
        assert node_a == node_b
        assert state_a.residual == state_b.residual
        assert state_a.retained == state_b.retained
        assert state_a.hub_ink == state_b.hub_ink
        np.testing.assert_array_equal(state_a.lower_bounds, state_b.lower_bounds)


def assert_sharded_matches(sharded_index, mono_index):
    for shard in sharded_index.shards:
        np.testing.assert_array_equal(
            np.asarray(shard.columns.lower),
            mono_index.columns.lower[:, shard.start : shard.stop],
        )


class TestTargetedFastPath:
    def test_fast_path_matches_object_path_and_fresh_build(self, base_graph):
        new_graph, touched = mutate(base_graph, seed=42)
        eng_fast, eng_obj, eng_sharded = engines_for(base_graph)

        report_fast = IndexMaintainer(eng_fast, rebuild_ratio=1.0).apply(
            new_graph, touched
        )
        report_obj = IndexMaintainer(eng_obj, rebuild_ratio=1.0).apply(
            new_graph, touched
        )
        report_sharded = IndexMaintainer(eng_sharded, rebuild_ratio=1.0).apply(
            new_graph, touched
        )

        assert not report_fast.full_rebuild
        assert report_fast.n_invalidated == report_obj.n_invalidated
        assert report_fast.n_rematerialized == report_obj.n_rematerialized
        assert report_sharded.n_invalidated == report_fast.n_invalidated

        assert_indexes_equal(eng_fast.index, eng_obj.index)
        assert_sharded_matches(eng_sharded.index, eng_fast.index)

        # Maintained == from-scratch under the same (pinned) hub set.
        fresh = build_index(new_graph, eng_fast.index.params, hubs=eng_fast.index.hubs)
        np.testing.assert_array_equal(
            eng_fast.index.columns.lower, fresh.columns.lower
        )
        np.testing.assert_array_equal(
            eng_fast.index.columns.residual_mass, fresh.columns.residual_mass
        )

    def test_query_parity_after_maintenance(self, base_graph):
        new_graph, touched = mutate(base_graph, seed=7)
        eng_fast, _, eng_sharded = engines_for(base_graph)
        IndexMaintainer(eng_fast, rebuild_ratio=1.0).apply(new_graph, touched)
        IndexMaintainer(eng_sharded, rebuild_ratio=1.0).apply(new_graph, touched)
        rng = np.random.default_rng(3)
        for query in rng.choice(base_graph.n_nodes, size=6, replace=False).tolist():
            mono = eng_fast.query(int(query), 3, update_index=False)
            sharded = eng_sharded.query(int(query), 3, update_index=False)
            np.testing.assert_array_equal(
                np.asarray(mono.nodes), np.asarray(sharded.nodes)
            )

    def test_hub_out_edge_triggers_rematerialisation(self, base_graph):
        eng_fast, eng_obj, _ = engines_for(base_graph)
        hub = int(eng_fast.index.hubs.nodes[0])
        new_graph, touched = mutate(base_graph, seed=11, from_hub=hub)
        report_fast = IndexMaintainer(eng_fast, rebuild_ratio=1.0).apply(
            new_graph, touched
        )
        report_obj = IndexMaintainer(eng_obj, rebuild_ratio=1.0).apply(
            new_graph, touched
        )
        assert report_fast.n_rematerialized > 0
        assert report_fast.n_rematerialized == report_obj.n_rematerialized
        assert_indexes_equal(eng_fast.index, eng_obj.index)

    def test_second_round_with_overlays_present(self, base_graph):
        graph_one, touched_one = mutate(base_graph, seed=42)
        eng_fast, eng_obj, eng_sharded = engines_for(base_graph)
        for engine in (eng_fast, eng_obj, eng_sharded):
            IndexMaintainer(engine, rebuild_ratio=1.0).apply(graph_one, touched_one)
        graph_two, touched_two = mutate(graph_one, seed=99)
        reports = [
            IndexMaintainer(engine, rebuild_ratio=1.0).apply(graph_two, touched_two)
            for engine in (eng_fast, eng_obj, eng_sharded)
        ]
        assert len({report.n_invalidated for report in reports}) == 1
        assert_indexes_equal(eng_fast.index, eng_obj.index)
        assert_sharded_matches(eng_sharded.index, eng_fast.index)
