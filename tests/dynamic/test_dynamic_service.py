"""Unit tests for DynamicReverseTopKService: live serving across updates."""

import numpy as np
import pytest

from repro.core import IndexParams, ReverseTopKEngine, build_index
from repro.dynamic import (
    DynamicGraph,
    DynamicReverseTopKService,
    GraphUpdate,
    IndexMaintainer,
)
from repro.graph import copying_web_graph, transition_matrix
from repro.serving import ServiceConfig, SnapshotManager

PARAMS = IndexParams(capacity=8, hub_budget=2)
CONFIG = ServiceConfig(cache_capacity=64, max_batch_size=8, n_workers=0)


def make_service(graph, config=CONFIG, **kwargs):
    matrix = transition_matrix(graph)
    index = build_index(graph, PARAMS.for_graph(graph.n_nodes), transition=matrix)
    engine = ReverseTopKEngine(matrix, index)
    return DynamicReverseTopKService(engine, config, graph=graph, **kwargs)


def fresh_engine(graph):
    return ReverseTopKEngine.build(graph, PARAMS.for_graph(graph.n_nodes))


class TestServeAcrossUpdates:
    def test_answers_track_the_mutating_graph(self):
        graph = copying_web_graph(50, out_degree=3, seed=20)
        with make_service(graph) as service:
            requests = [(q, 5) for q in range(0, 50, 7)]
            service.serve(requests)
            service.apply_updates([GraphUpdate.add(17, 33)])
            served = service.serve(requests)
            reference = fresh_engine(service.graph.base)
            for (query, k), result in zip(requests, served):
                direct = reference.query(query, k, update_index=False)
                np.testing.assert_array_equal(result.nodes, direct.nodes)
                np.testing.assert_array_equal(
                    result.proximities_to_query, direct.proximities_to_query
                )

    def test_effective_update_invalidates_cached_answers(self):
        graph = copying_web_graph(40, out_degree=3, seed=21)
        with make_service(graph) as service:
            requests = [(3, 5), (9, 5), (3, 5)]
            service.serve(requests)
            computed = service.metrics().n_engine_queries
            service.serve(requests)  # all hits
            assert service.metrics().n_engine_queries == computed
            report = service.apply_updates([GraphUpdate.add(5, 30)])
            assert report.changed
            service.serve(requests)
            assert service.metrics().n_engine_queries == computed + 2  # recomputed

    def test_noop_update_keeps_cache_warm(self):
        graph = copying_web_graph(40, out_degree=3, seed=22)
        with make_service(graph) as service:
            requests = [(3, 5), (9, 5)]
            service.serve(requests)
            computed = service.metrics().n_engine_queries
            u, v, _ = next(graph.edges())
            report = service.apply_updates([GraphUpdate.set_weight(u, v, 3.0)])
            assert not report.changed
            service.serve(requests)
            assert service.metrics().n_engine_queries == computed  # cache hits

    def test_tuple_updates_accepted(self):
        graph = copying_web_graph(30, out_degree=3, seed=23)
        with make_service(graph) as service:
            report = service.apply_updates([("add", 2, 25)])
            assert report.changed
            assert service.graph.base.has_edge(2, 25)

    def test_update_metrics_accumulate(self):
        graph = copying_web_graph(40, out_degree=3, seed=24)
        with make_service(graph) as service:
            service.apply_updates([GraphUpdate.add(1, 30)])
            u, v, _ = next(graph.edges())
            service.apply_updates([GraphUpdate.set_weight(u, v, 2.0)])
            metrics = service.update_metrics()
            assert metrics.n_update_batches == 2
            assert metrics.n_updates == 2
            assert metrics.n_noop_batches == 1
            assert metrics.index_version == service.engine.index.version
            payload = metrics.as_dict()
            assert payload["n_update_batches"] == 2

    def test_update_metrics_waits_for_index_writer(self):
        """Regression: the version snapshot queues behind a live index
        writer instead of reading a half-bumped value mid-``apply_updates``."""
        import threading

        graph = copying_web_graph(30, out_degree=3, seed=24)
        with make_service(graph) as service:
            done = threading.Event()
            captured = []

            def read_metrics():
                captured.append(service.update_metrics().index_version)
                done.set()

            with service._index_lock.write():
                thread = threading.Thread(target=read_metrics)
                thread.start()
                assert not done.wait(0.15)  # blocked behind the writer
            assert done.wait(5.0)
            thread.join(5.0)
            assert captured == [service.engine.index.version]

    def test_serving_metrics_endpoint_still_works(self):
        graph = copying_web_graph(30, out_degree=3, seed=25)
        with make_service(graph) as service:
            service.serve([(1, 5), (2, 5)])
            service.apply_updates([GraphUpdate.add(3, 20)])
            metrics = service.metrics()
            assert metrics.n_requests == 2
            assert metrics.index_version == service.engine.index.version


class TestConstruction:
    def test_from_graph_builds_everything(self):
        graph = copying_web_graph(30, out_degree=3, seed=26)
        with DynamicReverseTopKService.from_graph(graph, PARAMS) as service:
            assert service.engine.n_nodes == 30
            assert service.graph.n_nodes == 30
            assert not service.warm_started
            result = service.query(4, 5)
            direct = fresh_engine(graph).query(4, 5, update_index=False)
            np.testing.assert_array_equal(result.nodes, direct.nodes)

    def test_accepts_prewrapped_dynamic_graph(self):
        graph = copying_web_graph(30, out_degree=3, seed=27)
        dynamic = DynamicGraph(graph, compaction_threshold=2)
        matrix = transition_matrix(graph)
        index = build_index(graph, PARAMS.for_graph(30), transition=matrix)
        engine = ReverseTopKEngine(matrix, index)
        with DynamicReverseTopKService(engine, CONFIG, graph=dynamic) as service:
            assert service.graph is dynamic

    def test_graph_engine_size_mismatch_rejected(self):
        graph = copying_web_graph(30, out_degree=3, seed=28)
        other = copying_web_graph(31, out_degree=3, seed=28)
        matrix = transition_matrix(graph)
        index = build_index(graph, PARAMS.for_graph(30), transition=matrix)
        engine = ReverseTopKEngine(matrix, index)
        with pytest.raises(ValueError):
            DynamicReverseTopKService(engine, CONFIG, graph=other)

    def test_foreign_maintainer_rejected(self):
        graph = copying_web_graph(30, out_degree=3, seed=29)
        matrix = transition_matrix(graph)
        index = build_index(graph, PARAMS.for_graph(30), transition=matrix)
        engine = ReverseTopKEngine(matrix, index)
        other_engine = ReverseTopKEngine(matrix, index)
        with pytest.raises(ValueError):
            DynamicReverseTopKService(
                engine, CONFIG, graph=graph, maintainer=IndexMaintainer(other_engine)
            )


class TestSnapshots:
    def test_update_rearchives_under_new_graph_key(self, tmp_path):
        graph = copying_web_graph(30, out_degree=3, seed=30)
        with DynamicReverseTopKService.from_graph(
            graph, PARAMS, snapshot_dir=str(tmp_path)
        ) as service:
            service.apply_updates([GraphUpdate.add(2, 25)])
            mutated = service.graph.base
        # a restart against the mutated graph warm-starts from the re-archive
        with DynamicReverseTopKService.from_graph(
            mutated, PARAMS, snapshot_dir=str(tmp_path)
        ) as restarted:
            assert restarted.warm_started
        # ... and the original graph still warm-starts from its own archive
        with DynamicReverseTopKService.from_graph(
            graph, PARAMS, snapshot_dir=str(tmp_path)
        ) as original:
            assert original.warm_started

    def test_snapshot_manager_instance_accepted(self, tmp_path):
        graph = copying_web_graph(30, out_degree=3, seed=31)
        manager = SnapshotManager(str(tmp_path))
        with DynamicReverseTopKService.from_graph(
            graph, PARAMS, snapshot_dir=manager
        ) as service:
            service.apply_updates([GraphUpdate.add(1, 20)])
            assert any(tmp_path.iterdir())


class TestBatchAtomicity:
    def test_failing_batch_is_rejected_wholesale(self):
        from repro.exceptions import GraphError

        graph = copying_web_graph(30, out_degree=3, seed=32)
        with make_service(graph) as service:
            # find an absent edge for the valid prefix
            absent = next(
                (u, v)
                for u in range(30)
                for v in range(30)
                if u != v and not graph.has_edge(u, v)
            )
            with pytest.raises(GraphError):
                service.apply_updates(
                    [GraphUpdate.add(*absent), GraphUpdate.add(*absent)]
                )
            # the valid prefix must NOT be buffered...
            assert service.graph.pending_updates == 0
            assert not service.graph.has_edge(*absent)
            # ...and a later empty batch must not commit it
            report = service.apply_updates([])
            assert not report.changed
            assert not service.graph.base.has_edge(*absent)

    def test_maintenance_failure_keeps_columns_dirty(self):
        graph = copying_web_graph(30, out_degree=3, seed=33)
        with make_service(graph) as service:
            absent = next(
                (u, v)
                for u in range(30)
                for v in range(30)
                if u != v and not graph.has_edge(u, v)
            )
            boom = RuntimeError("maintenance exploded")
            original_apply = service.maintainer.apply

            def failing_apply(new_graph, touched):
                raise boom

            service.maintainer.apply = failing_apply
            with pytest.raises(RuntimeError):
                service.apply_updates([GraphUpdate.add(*absent)])
            # the graph committed, and the touched source was re-registered
            assert service.graph.base.has_edge(*absent)
            assert absent[0] in service.graph.touched_sources
            # retry succeeds and maintains the previously-dirty column
            service.maintainer.apply = original_apply
            report = service.apply_updates([])
            assert report.changed
            reference = ReverseTopKEngine(
                service.engine.transition,
                build_index(
                    service.graph.base,
                    PARAMS.for_graph(30),
                    hubs=service.engine.index.hubs,
                    transition=service.engine.transition,
                ),
            )
            for query in range(0, 30, 5):
                a = service.query(query, 5)
                b = reference.query(query, 5, update_index=False)
                np.testing.assert_array_equal(a.nodes, b.nodes)


class TestWeightedWalk:
    def test_weighted_service_maintains_weighted_columns(self):
        from repro.graph import weighted_transition_matrix

        graph = copying_web_graph(40, out_degree=3, seed=34)
        # make the weights actually matter
        u0, v0, _ = next(graph.edges())
        graph = graph.with_edges(added=[(u0, v0, 3.0)])
        with DynamicReverseTopKService.from_graph(
            graph, PARAMS, weighted=True
        ) as service:
            assert service.maintainer.weighted
            edges = [(u, v) for u, v, _ in graph.edges()]
            report = service.apply_updates(
                [GraphUpdate.set_weight(*edges[5], 4.0)]
            )
            # a weight change is NOT a no-op under the weighted walk
            assert report.changed
            mutated = service.graph.base
            expected = weighted_transition_matrix(mutated)
            np.testing.assert_array_equal(
                service.engine.transition.toarray(), expected.toarray()
            )
            fresh = ReverseTopKEngine(
                expected,
                build_index(
                    mutated,
                    PARAMS.for_graph(40),
                    hubs=service.engine.index.hubs,
                    transition=expected,
                ),
            )
            for query in range(0, 40, 7):
                a = service.query(query, 5)
                b = fresh.query(query, 5, update_index=False)
                np.testing.assert_array_equal(a.nodes, b.nodes)
                np.testing.assert_array_equal(
                    a.proximities_to_query, b.proximities_to_query
                )

    def test_mismatched_transition_rejected(self):
        from repro.graph import weighted_transition_matrix

        graph = copying_web_graph(30, out_degree=3, seed=35)
        u0, v0, _ = next(graph.edges())
        graph = graph.with_edges(added=[(u0, v0, 3.0)])
        with pytest.raises(ValueError, match="delta maintenance"):
            DynamicReverseTopKService.from_graph(
                graph, PARAMS, transition=weighted_transition_matrix(graph)
            )

    def test_matching_explicit_transition_accepted(self):
        graph = copying_web_graph(30, out_degree=3, seed=36)
        with DynamicReverseTopKService.from_graph(
            graph, PARAMS, transition=transition_matrix(graph)
        ) as service:
            assert not service.maintainer.weighted


class TestConstructionValidation:
    def test_mismatched_graph_rejected_at_construction(self):
        graph = copying_web_graph(30, out_degree=3, seed=37)
        other = copying_web_graph(30, out_degree=3, seed=38)  # same n, new edges
        matrix = transition_matrix(graph)
        index = build_index(graph, PARAMS.for_graph(30), transition=matrix)
        engine = ReverseTopKEngine(matrix, index)
        with pytest.raises(ValueError, match="does not match"):
            DynamicReverseTopKService(engine, CONFIG, graph=other)

    def test_weighted_engine_with_unweighted_maintainer_rejected(self):
        from repro.graph import weighted_transition_matrix

        graph = copying_web_graph(30, out_degree=3, seed=39)
        u0, v0, _ = next(graph.edges())
        graph = graph.with_edges(added=[(u0, v0, 3.0)])
        matrix = weighted_transition_matrix(graph)
        index = build_index(graph, PARAMS.for_graph(30), transition=matrix)
        engine = ReverseTopKEngine(matrix, index)
        with pytest.raises(ValueError, match="weighted"):
            DynamicReverseTopKService(engine, CONFIG, graph=graph)
        # ...and accepted once the maintainer declares the walk variant
        with DynamicReverseTopKService(
            engine,
            CONFIG,
            graph=graph,
            maintainer=IndexMaintainer(engine, weighted=True),
        ) as service:
            assert service.maintainer.weighted
