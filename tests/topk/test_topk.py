"""Tests for the forward top-k baselines (exact, BPA, K-dash, Monte Carlo)."""

import numpy as np
import pytest

from repro.exceptions import InvalidParameterError
from repro.topk import KDashIndex, basic_push_top_k, exact_top_k, monte_carlo_top_k
from repro.utils.sparsetools import dense_top_k


class TestExactTopK:
    def test_matches_exact_matrix(self, small_transition, small_exact_matrix):
        for node in (0, 5, 30):
            ids, values = exact_top_k(small_transition, node, 5)
            expected_ids, expected_values = dense_top_k(small_exact_matrix[:, node], 5)
            np.testing.assert_allclose(values, expected_values, atol=1e-7)
            # Sets must match even when close values swap order.
            assert set(ids.tolist()) == set(expected_ids.tolist())

    def test_values_descending(self, small_transition):
        _, values = exact_top_k(small_transition, 3, 8)
        assert all(values[i] >= values[i + 1] for i in range(len(values) - 1))

    def test_source_keeps_at_least_restart_mass(self, small_transition):
        # The source retains at least alpha of the walk mass, so it always
        # appears among its own strongest proximities (though hubs may beat it).
        ids, values = exact_top_k(small_transition, 12, 10)
        source_value = dict(zip(ids.tolist(), values.tolist())).get(12, 0.0)
        assert source_value >= 0.15 - 1e-9

    def test_invalid_k(self, small_transition):
        with pytest.raises(InvalidParameterError):
            exact_top_k(small_transition, 0, 10_000)


class TestBasicPushTopK:
    def test_top_set_matches_exact(self, small_transition, small_exact_matrix):
        for node in (1, 7, 22):
            ids, _ = basic_push_top_k(small_transition, node, 5, propagation_threshold=1e-8)
            exact_ids, exact_values = dense_top_k(small_exact_matrix[:, node], 5)
            # Compare as sets of "clearly top" nodes: allow swaps among ties.
            kth = exact_values[-1]
            clear = {int(v) for v, value in zip(exact_ids, exact_values) if value > kth + 1e-9}
            assert clear <= set(ids.tolist())

    def test_values_are_lower_bounds(self, small_transition, small_exact_matrix):
        node = 4
        ids, values = basic_push_top_k(small_transition, node, 5)
        for candidate, value in zip(ids, values):
            assert value <= small_exact_matrix[candidate, node] + 1e-9

    def test_push_budget_limits_work(self, small_transition):
        ids, values = basic_push_top_k(small_transition, 0, 3, max_pushes=2)
        assert len(ids) <= 3

    def test_coarse_threshold_still_returns_k_entries(self, small_transition):
        ids, _ = basic_push_top_k(small_transition, 9, 4, propagation_threshold=1e-2)
        assert len(ids) == 4


class TestKDash:
    @pytest.fixture(scope="class")
    def kdash(self, small_transition):
        return KDashIndex(small_transition)

    def test_matches_exact(self, kdash, small_transition, small_exact_matrix):
        for node in (2, 17):
            ids, values = kdash.top_k(node, 6)
            expected_ids, expected_values = dense_top_k(small_exact_matrix[:, node], 6)
            np.testing.assert_allclose(values, expected_values, atol=1e-8)
            assert set(ids.tolist()) == set(expected_ids.tolist())

    def test_kth_value(self, kdash, small_exact_matrix):
        expected = np.sort(small_exact_matrix[:, 8])[-3]
        assert kdash.kth_value(8, 3) == pytest.approx(expected, abs=1e-8)

    def test_proximity_vector_is_distribution(self, kdash):
        vector = kdash.proximity_vector(0)
        assert vector.sum() == pytest.approx(1.0, abs=1e-8)

    def test_n_nodes(self, kdash, small_transition):
        assert kdash.n_nodes == small_transition.shape[0]


class TestMonteCarloTopK:
    def test_top1_lands_in_exact_top3(self, small_transition, small_exact_matrix):
        # Exact top values may tie, so only require the MC winner to be among
        # the strongest few exact entries.
        node = 6
        ids, _ = monte_carlo_top_k(small_transition, node, 1, walks=4000, seed=2)
        exact_ids, _ = dense_top_k(small_exact_matrix[:, node], 3)
        assert int(ids[0]) in set(exact_ids.tolist())

    def test_reproducible_with_seed(self, small_transition):
        a = monte_carlo_top_k(small_transition, 3, 5, walks=500, seed=7)
        b = monte_carlo_top_k(small_transition, 3, 5, walks=500, seed=7)
        np.testing.assert_array_equal(a[0], b[0])

    def test_end_point_method(self, small_transition):
        ids, values = monte_carlo_top_k(
            small_transition, 3, 5, walks=1000, method="end_point", seed=1
        )
        assert len(ids) == 5
        assert values.max() <= 1.0

    def test_rejects_unknown_method(self, small_transition):
        with pytest.raises(InvalidParameterError):
            monte_carlo_top_k(small_transition, 0, 3, method="quantum")

    def test_recall_against_exact_topk(self, small_transition, small_exact_matrix):
        node = 14
        ids, _ = monte_carlo_top_k(small_transition, node, 10, walks=6000, seed=4)
        exact_ids, _ = dense_top_k(small_exact_matrix[:, node], 10)
        overlap = len(set(ids.tolist()) & set(exact_ids.tolist()))
        assert overlap >= 6
