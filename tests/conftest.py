"""Shared fixtures: small graphs, transition matrices and exact oracles.

All fixtures are deterministic (fixed seeds) and module-scoped where the
object is immutable, so the suite stays fast while individual tests remain
independent.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import IndexParams, build_index
from repro.graph import (
    DiGraph,
    coauthorship_graph,
    copying_web_graph,
    erdos_renyi_graph,
    spam_host_graph,
    transition_matrix,
    trust_graph,
)
from repro.graph.generators import paper_toy_graph
from repro.rwr import ProximityLU


@pytest.fixture(scope="session")
def toy_graph() -> DiGraph:
    """The 6-node running example of the paper (Figures 1-2)."""
    return paper_toy_graph()


@pytest.fixture(scope="session")
def small_web_graph() -> DiGraph:
    """A 60-node web-like graph used across unit tests."""
    return copying_web_graph(60, out_degree=4, seed=11)


@pytest.fixture(scope="session")
def medium_web_graph() -> DiGraph:
    """A 150-node web-like graph for integration-style tests."""
    return copying_web_graph(150, out_degree=5, seed=5)


@pytest.fixture(scope="session")
def small_trust_graph() -> DiGraph:
    """A 70-node trust network (denser, reciprocated edges)."""
    return trust_graph(70, seed=3)


@pytest.fixture(scope="session")
def random_graph() -> DiGraph:
    """A directed Erdős–Rényi graph with no hub structure."""
    return erdos_renyi_graph(50, 0.08, seed=9)


@pytest.fixture(scope="session")
def labelled_spam_graph():
    """A labelled spam-host graph ``(graph, labels)``."""
    return spam_host_graph(70, 20, seed=13)


@pytest.fixture(scope="session")
def weighted_coauthor_graph():
    """A weighted co-authorship graph ``(graph, paper_counts)``."""
    return coauthorship_graph(60, n_prolific=2, seed=17)


@pytest.fixture(scope="session")
def small_transition(small_web_graph):
    """Column-stochastic transition matrix of the small web graph."""
    return transition_matrix(small_web_graph)


@pytest.fixture(scope="session")
def small_exact_matrix(small_transition):
    """Exact dense proximity matrix of the small web graph (LU oracle)."""
    return ProximityLU(small_transition).matrix()


@pytest.fixture(scope="session")
def small_params() -> IndexParams:
    """Index parameters scaled for the unit-test graphs."""
    return IndexParams(capacity=15, hub_budget=4)


@pytest.fixture(scope="session")
def small_index(small_web_graph, small_transition, small_params):
    """A pre-built index over the small web graph (shared, not mutated).

    Tests that refine or update the index must deep-copy it first (or build
    their own) so this shared fixture stays pristine.
    """
    return build_index(small_web_graph, small_params, transition=small_transition)


def assert_reverse_topk_consistent(result_nodes, exact_matrix, query, k, *, atol=1e-9):
    """Tie-aware comparison of a reverse top-k answer against the exact matrix.

    Nodes whose membership is numerically ambiguous (``|p_u(q) - kth| <= atol``)
    may legitimately appear in either answer; everything else must match.
    """
    result = {int(v) for v in result_nodes}
    n = exact_matrix.shape[0]
    for node in range(n):
        column = exact_matrix[:, node]
        kth = np.sort(column)[-k]
        value = column[query]
        if value > kth + atol:
            assert node in result, f"node {node} (clear member) missing from result"
        elif value < kth - atol:
            assert node not in result, f"node {node} (clear non-member) wrongly included"


@pytest.fixture(scope="session")
def reverse_topk_checker():
    """Expose the tie-aware checker to test modules as a fixture."""
    return assert_reverse_topk_consistent
