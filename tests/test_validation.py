"""Tests for the shared validation helpers and the exception hierarchy."""

import numpy as np
import pytest

from repro._validation import (
    as_node_array,
    check_k,
    check_membership,
    check_node_index,
    check_non_negative_float,
    check_non_negative_int,
    check_positive_float,
    check_positive_int,
    check_probability,
)
from repro.exceptions import (
    ConvergenceError,
    GraphError,
    InvalidParameterError,
    NodeNotFoundError,
    ReproError,
)


class TestCheckProbability:
    def test_accepts_interior_value(self):
        assert check_probability(0.15, "alpha") == 0.15

    def test_rejects_boundary_when_exclusive(self):
        with pytest.raises(InvalidParameterError):
            check_probability(0.0, "alpha")
        with pytest.raises(InvalidParameterError):
            check_probability(1.0, "alpha")

    def test_accepts_boundary_when_inclusive(self):
        assert check_probability(0.0, "p", inclusive=True) == 0.0
        assert check_probability(1.0, "p", inclusive=True) == 1.0

    def test_rejects_nan(self):
        with pytest.raises(InvalidParameterError):
            check_probability(float("nan"), "p")


class TestIntegerChecks:
    def test_positive_int(self):
        assert check_positive_int(3, "k") == 3

    def test_positive_int_rejects_zero(self):
        with pytest.raises(InvalidParameterError):
            check_positive_int(0, "k")

    def test_positive_int_rejects_bool(self):
        with pytest.raises(InvalidParameterError):
            check_positive_int(True, "k")

    def test_positive_int_rejects_float(self):
        with pytest.raises(InvalidParameterError):
            check_positive_int(2.5, "k")

    def test_non_negative_int_accepts_zero(self):
        assert check_non_negative_int(0, "b") == 0

    def test_non_negative_int_rejects_negative(self):
        with pytest.raises(InvalidParameterError):
            check_non_negative_int(-1, "b")

    def test_numpy_integer_accepted(self):
        assert check_positive_int(np.int64(4), "k") == 4


class TestFloatChecks:
    def test_positive_float(self):
        assert check_positive_float(0.5, "eta") == 0.5

    def test_positive_float_rejects_zero(self):
        with pytest.raises(InvalidParameterError):
            check_positive_float(0.0, "eta")

    def test_non_negative_float_accepts_zero(self):
        assert check_non_negative_float(0.0, "omega") == 0.0

    def test_non_negative_float_rejects_inf(self):
        with pytest.raises(InvalidParameterError):
            check_non_negative_float(float("inf"), "omega")


class TestNodeChecks:
    def test_valid_node(self):
        assert check_node_index(3, 10) == 3

    def test_out_of_range(self):
        with pytest.raises(InvalidParameterError):
            check_node_index(10, 10)
        with pytest.raises(InvalidParameterError):
            check_node_index(-1, 10)

    def test_non_integer(self):
        with pytest.raises(InvalidParameterError):
            check_node_index("a", 10)

    def test_check_k_within_capacity(self):
        assert check_k(5, 100, maximum=10) == 5

    def test_check_k_exceeds_nodes(self):
        with pytest.raises(InvalidParameterError):
            check_k(11, 10)

    def test_check_k_exceeds_capacity(self):
        with pytest.raises(InvalidParameterError):
            check_k(11, 100, maximum=10)

    def test_as_node_array(self):
        array = as_node_array([1, 2, 3], 5)
        assert array.dtype == np.int64

    def test_as_node_array_rejects_out_of_range(self):
        with pytest.raises(InvalidParameterError):
            as_node_array([1, 9], 5)


class TestMembership:
    def test_accepts_member(self):
        assert check_membership("a", ("a", "b"), "mode") == "a"

    def test_rejects_non_member(self):
        with pytest.raises(InvalidParameterError):
            check_membership("c", ("a", "b"), "mode")


class TestExceptionHierarchy:
    def test_all_derive_from_repro_error(self):
        assert issubclass(GraphError, ReproError)
        assert issubclass(InvalidParameterError, ReproError)
        assert issubclass(ConvergenceError, ReproError)

    def test_invalid_parameter_is_value_error(self):
        assert issubclass(InvalidParameterError, ValueError)

    def test_node_not_found_is_key_error(self):
        assert issubclass(NodeNotFoundError, KeyError)
        error = NodeNotFoundError(7)
        assert error.node == 7

    def test_convergence_error_carries_context(self):
        error = ConvergenceError("failed", iterations=5, residual=0.1)
        assert error.iterations == 5
        assert error.residual == 0.1
