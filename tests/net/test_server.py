"""End-to-end server tests over real sockets (threaded server + async client)."""

from __future__ import annotations

import asyncio

import numpy as np
import pytest

from repro.dynamic import DynamicReverseTopKService
from repro.net import (
    AdmissionPolicy,
    ReverseTopKClient,
    ServerConfig,
    ServerRejected,
    start_in_thread,
)


def drive(handle, coro_fn, *args, **kwargs):
    """Run one client coroutine against a threaded server."""

    async def scenario():
        async with ReverseTopKClient(
            handle.host, handle.port, max_connections=256
        ) as client:
            return await coro_fn(client, *args, **kwargs)

    return asyncio.run(scenario())


def absent_edges(graph, count):
    present = {(u, v) for u, v, _ in graph.edges()}
    found = []
    for u in range(graph.n_nodes):
        for v in range(graph.n_nodes):
            if u != v and (u, v) not in present:
                found.append((u, v))
                if len(found) == count:
                    return found
    raise RuntimeError("graph is complete")


class TestQueryPath:
    def test_answers_bit_identical_to_direct_engine(
        self, server_handle, dynamic_service
    ):
        async def scenario(client):
            return await asyncio.gather(
                *[client.query(q, 7) for q in range(30)]
            )

        responses = drive(server_handle, scenario)
        for q, response in enumerate(responses):
            direct = dynamic_service.engine.query(q, 7, update_index=False)
            np.testing.assert_array_equal(response["nodes"], direct.nodes)
            assert np.array_equal(
                np.asarray(response["proximities"], dtype=np.float64),
                direct.proximities_to_query,
            )
            assert response["index_version"] == 0

    def test_get_and_post_agree(self, server_handle):
        async def scenario(client):
            post = await client.query(5, 4)
            get = await client._request("GET", "/query?query=5&k=4")
            return post, get

        post, get = drive(server_handle, scenario)
        assert post["nodes"] == get["nodes"]
        assert post["proximities"] == get["proximities"]

    @pytest.mark.parametrize(
        "payload",
        [
            {"query": 10**9, "k": 5},
            {"query": -1, "k": 5},
            {"query": 3, "k": 0},
            {"query": 3, "k": 10**9},
            {"query": "x", "k": 5},
            {"k": 5},
        ],
    )
    def test_invalid_queries_answer_400(self, server_handle, payload):
        async def scenario(client):
            from repro.net.http import json_payload

            with pytest.raises(ServerRejected) as excinfo:
                await client._request(
                    "POST", "/query", body=json_payload(payload)
                )
            assert excinfo.value.status == 400
            # ...and the connection/coalescer keep working afterwards.
            follow_up = await client.query(2, 5)
            return follow_up

        assert drive(server_handle, scenario)["query"] == 2

    def test_prewarm_pins_sockets_open(self, server_handle):
        async def scenario(client):
            opened = await client.prewarm(32)
            metrics = await client.metrics()
            follow_up = await client.query(1, 5)
            return opened, metrics, follow_up

        opened, metrics, follow_up = drive(server_handle, scenario)
        assert opened == 32
        assert metrics["server"]["open_connections"] >= 32
        assert follow_up["query"] == 1

    def test_unknown_path_404_wrong_method_405(self, server_handle):
        async def scenario(client):
            with pytest.raises(ServerRejected) as nf:
                await client._request("GET", "/nope")
            with pytest.raises(ServerRejected) as wm:
                await client._request("POST", "/metrics", body=b"{}")
            return nf.value.status, wm.value.status

        assert drive(server_handle, scenario) == (404, 405)


class TestBackpressure:
    def test_overload_sheds_429_with_bounded_queue(self, small_web_graph):
        service = DynamicReverseTopKService.from_graph(small_web_graph)
        handle = start_in_thread(
            service,
            ServerConfig(admission=AdmissionPolicy(max_pending=8)),
        )
        try:

            async def scenario(client):
                outcomes = await asyncio.gather(
                    *[client.query(q % 60, 5) for q in range(64)],
                    return_exceptions=True,
                )
                metrics = await client.metrics()
                return outcomes, metrics

            outcomes, metrics = drive(handle, scenario)
            shed = [o for o in outcomes if isinstance(o, ServerRejected)]
            served = [o for o in outcomes if isinstance(o, dict)]
            assert shed, "overload must shed"
            assert all(s.status == 429 for s in shed)
            assert all(s.retry_after is not None for s in shed)
            assert served, "some requests must still be served"
            assert metrics["admission"]["peak_pending"] <= 8
            counters = metrics["tenants"]["default"]["counters"]
            assert counters["shed_queue_full"] == len(shed)
        finally:
            handle.stop()
            if not service.closed:
                service.close()

    def test_rate_limit_sheds_with_retry_after(self, small_web_graph):
        service = DynamicReverseTopKService.from_graph(small_web_graph)
        handle = start_in_thread(
            service,
            ServerConfig(
                admission=AdmissionPolicy(
                    max_pending=128, rate_limit=5.0, burst=2
                )
            ),
        )
        try:

            async def scenario(client):
                results = []
                for q in range(6):
                    try:
                        results.append(await client.query(q, 5))
                    except ServerRejected as exc:
                        results.append(exc)
                return results

            results = drive(handle, scenario)
            shed = [r for r in results if isinstance(r, ServerRejected)]
            assert shed and all(s.status == 429 for s in shed)
            assert all(0 < s.retry_after <= 0.21 for s in shed)
        finally:
            handle.stop()
            if not service.closed:
                service.close()

    def test_expired_deadline_sheds_504_before_work(self, server_handle):
        async def scenario(client):
            with pytest.raises(ServerRejected) as excinfo:
                await client.query(3, 5, deadline_ms=0.001)
            return excinfo.value.status

        assert drive(server_handle, scenario) == 504


class TestRolloverOverHttp:
    def test_update_advances_generation_and_answers_track_graph(
        self, server_handle, dynamic_service, small_web_graph
    ):
        edges = absent_edges(small_web_graph, 2)

        async def scenario(client):
            before = await client.query(0, 5)
            ack = await client.update([("add", *edges[0]), ("add", *edges[1])])
            after = await client.query(0, 5)
            return before, ack, after

        before, ack, after = drive(server_handle, scenario)
        assert before["generation"] == 0 and before["index_version"] == 0
        assert ack["changed"] and ack["generation"] == 1
        assert after["generation"] == 1 and after["index_version"] == 1

    def test_no_torn_versions_under_concurrent_churn(
        self, dynamic_service, small_web_graph
    ):
        """Every response's (generation, index_version) pair must be one the
        server actually served — never a mixture of two epochs."""
        handle = start_in_thread(
            dynamic_service,
            ServerConfig(admission=AdmissionPolicy(max_pending=256)),
        )
        edges = absent_edges(small_web_graph, 4)
        try:

            async def scenario(client):
                stop = asyncio.Event()
                seen = []

                async def churn():
                    for edge in edges:
                        await client.update([("add", *edge)])
                        await asyncio.sleep(0.01)
                    stop.set()

                async def query_forever():
                    while not stop.is_set():
                        response = await client.query(1, 5)
                        seen.append(
                            (response["generation"], response["index_version"])
                        )

                await asyncio.gather(
                    churn(), query_forever(), query_forever()
                )
                return seen

            seen = drive(handle, scenario)
            # Exactly the pairs of real generations: id i serves version i.
            assert set(seen) <= {(i, i) for i in range(len(edges) + 1)}
            # And the stream is monotone: once swapped, never back.
            generations = [generation for generation, _ in seen]
            assert generations == sorted(generations)
        finally:
            handle.stop()

    def test_invalid_update_batch_rejected_wholesale(
        self, server_handle, small_web_graph
    ):
        u, v, _ = next(iter(small_web_graph.edges()))

        async def scenario(client):
            with pytest.raises(ServerRejected) as excinfo:
                await client.update([("add", u, v)])  # edge already exists
            follow_up = await client.query(2, 5)
            return excinfo.value.status, follow_up

        status, follow_up = drive(server_handle, scenario)
        assert status == 500  # GraphError surfaces as a server-side failure
        assert follow_up["generation"] == 0  # old generation still serving


class TestMetricsAndShutdown:
    def test_metrics_shape(self, server_handle):
        async def scenario(client):
            await asyncio.gather(
                *[client.query(q % 10, 5, tenant="acme") for q in range(20)]
            )
            return await client.metrics()

        metrics = drive(server_handle, scenario)
        assert metrics["admission"]["pending"] == 0
        assert metrics["coalesce"]["n_submitted"] >= 20
        acme = metrics["tenants"]["acme"]
        assert acme["counters"]["admitted"] == 20
        assert acme["counters"]["completed"] == 20
        assert acme["latency"]["count"] == 20.0
        assert 0 < acme["latency"]["p50_seconds"] <= acme["latency"]["p99_seconds"]
        assert "service" in metrics and "rollover" in metrics

    def test_graceful_stop_closes_generations(
        self, dynamic_service, small_web_graph
    ):
        handle = start_in_thread(dynamic_service, ServerConfig())

        async def scenario(client):
            return await client.query(3, 5)

        assert drive(handle, scenario)["query"] == 3
        handle.stop()
        assert dynamic_service.closed
        handle.stop()  # idempotent

    def test_healthz(self, server_handle):
        async def scenario(client):
            return await client.healthz()

        assert drive(server_handle, scenario) == {"status": "ok"}
