"""Server observability tests: X-Trace trees, dual /metrics, /debug/slow.

Also pins the coalescer's trace propagation across the asyncio → thread
boundary, including under concurrent waiter cancellation.
"""

from __future__ import annotations

import asyncio
from concurrent.futures import ThreadPoolExecutor

import pytest

from repro.net import ReverseTopKClient, ServerConfig, start_in_thread
from repro.net.coalesce import QueryCoalescer
from repro.obs import Trace, get_registry
from repro.serving.service import ReverseTopKService


@pytest.fixture()
def obs_handle(dynamic_service):
    """A server that records every query in its slow log (threshold 0)."""
    handle = start_in_thread(
        dynamic_service,
        ServerConfig(slow_query_threshold=0.0, slow_log_capacity=4),
    )
    yield handle
    handle.stop()


def drive(handle, coro_fn, *args, **kwargs):
    async def scenario():
        async with ReverseTopKClient(handle.host, handle.port) as client:
            return await coro_fn(client, *args, **kwargs)

    return asyncio.run(scenario())


def span_names(tree: dict) -> set:
    names = {tree["name"]}
    for child in tree["children"]:
        names |= span_names(child)
    return names


def find_span(tree: dict, name: str):
    if tree["name"] == name:
        return tree
    for child in tree["children"]:
        found = find_span(child, name)
        if found is not None:
            return found
    return None


class TestTraceHeader:
    def test_traced_query_returns_full_span_tree(self, obs_handle):
        async def scenario(client):
            return await client.query(5, 4, trace=True)

        response = drive(obs_handle, scenario)
        tree = response["trace"]
        assert tree["name"] == "request"
        # The acceptance path: admission -> coalesce -> batch -> engine
        # stages (pmpn / scan / refine) all present in one tree.
        names = span_names(tree)
        for required in (
            "admission",
            "await.result",
            "coalesce.batch",
            "service.serve",
            "batch.plan",
            "batch.execute",
            "engine.query",
            "stage.pmpn",
            "stage.scan",
            "stage.refine",
        ):
            assert required in names, f"missing span {required}: {names}"
        annotations = tree["annotations"]
        assert annotations["query"] == 5 and annotations["k"] == 4
        assert annotations["generation"] == 0
        assert annotations["index_version"] == 0
        assert annotations["coalesce_fan_in"] == 1
        assert find_span(tree, "admission")["annotations"]["queue_depth"] >= 0
        engine = find_span(tree, "engine.query")
        assert engine["annotations"]["n_pruned"] >= 0
        assert engine["annotations"]["pmpn_iterations"] > 0

    def test_timings_sum_consistently(self, obs_handle):
        async def scenario(client):
            return await client.query(7, 5, trace=True)

        tree = drive(obs_handle, scenario)["trace"]
        root_seconds = tree["seconds"]
        admission = find_span(tree, "admission")["seconds"]
        awaited = find_span(tree, "await.result")["seconds"]
        batch = find_span(tree, "coalesce.batch")["seconds"]
        # Sequential phases fit inside the root; the grafted batch subtree
        # (measured on the worker thread) also fits inside the request.
        assert 0.0 <= admission + awaited <= root_seconds
        assert 0.0 < batch <= root_seconds
        engine = find_span(tree, "engine.query")
        stage_sum = sum(
            child["seconds"]
            for child in engine["children"]
            if child["name"].startswith("stage.")
        )
        # Stage buckets attribute exclusive time: their sum never exceeds
        # the engine query's own wall clock.
        assert stage_sum <= engine["seconds"] * 1.05 + 1e-6

    def test_untraced_query_has_no_trace_field(self, obs_handle):
        async def scenario(client):
            return await client.query(3, 4)

        assert "trace" not in drive(obs_handle, scenario)

    def test_coalesced_waiters_share_the_batch_tree(self, obs_handle):
        async def scenario(client):
            return await asyncio.gather(
                client.query(9, 4, trace=True),
                client.query(9, 4, trace=True),
            )

        first, second = drive(obs_handle, scenario)
        fan_ins = sorted(
            response["trace"]["annotations"]["coalesce_fan_in"]
            for response in (first, second)
        )
        assert fan_ins == [2, 2]
        for response in (first, second):
            assert "engine.query" in span_names(response["trace"])


class TestDualMetrics:
    def test_json_and_prometheus_come_from_one_registry(self, obs_handle):
        async def scenario(client):
            for query in range(6):
                await client.query(query, 4)
            text = await client.metrics_text()
            payload = await client.metrics()
            return text, payload

        text, payload = drive(obs_handle, scenario)
        parsed = {}
        for line in text.splitlines():
            if line.startswith("#") or " " not in line:
                continue
            name, value = line.rsplit(" ", 1)
            parsed[name] = float(value)
        assert parsed["repro_coalesce_submitted_total"] == float(
            payload["coalesce"]["n_submitted"]
        )
        assert (
            parsed['repro_request_seconds_count{tenant="default"}'] == 6.0
        )
        assert parsed["repro_rollover_generation"] == 0.0
        # The JSON document keeps its historical shape.
        assert set(payload) == {
            "server",
            "admission",
            "coalesce",
            "rollover",
            "tenants",
            "service",
        }

    def test_server_registry_is_isolated(self, obs_handle):
        assert obs_handle.server.registry is not get_registry()
        families = obs_handle.server.registry.as_dict()
        assert "repro_http_requests_total" in families
        assert "repro_cache_lookups_total" in families  # service re-bound


class TestSlowLogEndpoint:
    def test_debug_slow_records_and_evicts(self, obs_handle):
        async def scenario(client):
            for query in range(6):
                await client.query(query, 4, trace=query == 5)
            return await client.slow_queries()

        snap = drive(obs_handle, scenario)
        assert snap["capacity"] == 4
        assert snap["n_recorded"] == 6
        assert snap["n_retained"] == 4  # ring evicted the two oldest
        newest = snap["entries"][0]
        assert newest["query"] == 5 and newest["status"] == 200
        assert newest["traced"] is True
        assert newest["trace"]["name"] == "request"
        assert snap["entries"][1]["traced"] is False

    def test_default_threshold_keeps_fast_queries_out(self, server_handle):
        async def scenario(client):
            await client.query(1, 4)
            return await client.slow_queries()

        snap = drive(server_handle, scenario)
        assert snap["threshold_seconds"] == pytest.approx(0.1)
        assert snap["n_recorded"] == 0


class TestCoalescerTracePropagation:
    @pytest.fixture()
    def service(self, small_web_graph):
        service = ReverseTopKService.from_graph(small_web_graph)
        yield service
        if not service.closed:
            service.close()

    @pytest.fixture()
    def executor(self):
        pool = ThreadPoolExecutor(max_workers=1)
        yield pool
        pool.shutdown(wait=True)

    def test_trace_crosses_executor_boundary(self, service, executor):
        async def scenario():
            coalescer = QueryCoalescer(service, executor, batch_window=0.005)
            trace = Trace("request")
            with trace:
                future, coalesced = coalescer.submit(3, 5)
            assert not coalesced
            await asyncio.shield(future)
            await coalescer.aclose()
            return trace

        trace = asyncio.run(scenario())
        tree = trace.to_dict()
        assert find_span(tree, "coalesce.batch") is not None
        # The engine ran on the executor thread, yet its spans attached.
        assert find_span(tree, "engine.query") is not None

    def test_untraced_submits_stay_trace_free(self, service, executor):
        async def scenario():
            coalescer = QueryCoalescer(service, executor, batch_window=0.0)
            future, _ = coalescer.submit(3, 5)
            result = await asyncio.shield(future)
            assert not coalescer._trace_parents
            await coalescer.aclose()
            return result

        result = asyncio.run(scenario())
        assert result.query == 3

    def test_graft_survives_concurrent_waiter_cancellation(
        self, service, executor
    ):
        async def scenario():
            coalescer = QueryCoalescer(service, executor, batch_window=0.02)
            survivor_trace = Trace("survivor")
            doomed_trace = Trace("doomed")
            with survivor_trace:
                future, _ = coalescer.submit(3, 5)
            with doomed_trace:
                same, coalesced = coalescer.submit(3, 5)
            assert same is future and coalesced
            # The doomed waiter times out while the batch is still pending;
            # shield keeps the shared future (and the survivor) alive.
            with pytest.raises(asyncio.TimeoutError):
                await asyncio.wait_for(asyncio.shield(future), timeout=0.001)
            result = await asyncio.shield(future)
            await coalescer.aclose()
            return survivor_trace, doomed_trace, result

        survivor_trace, doomed_trace, result = asyncio.run(scenario())
        assert result.query == 3
        # Both waiters' traces got the shared batch tree — cancellation of
        # one wait never detaches the other's trace (or its result).
        for trace in (survivor_trace, doomed_trace):
            tree = trace.to_dict()
            assert trace.root.annotations["coalesce_fan_in"] == 2
            batch = find_span(tree, "coalesce.batch")
            assert batch is not None
            assert find_span(batch, "engine.query") is not None
        shared = survivor_trace.root.children[-1]
        assert shared is doomed_trace.root.children[-1]  # grafted by reference

    def test_many_concurrent_traced_waiters_under_cancellation(
        self, service, executor
    ):
        async def scenario():
            coalescer = QueryCoalescer(service, executor, batch_window=0.01)
            traces = []
            futures = []
            for i in range(12):
                trace = Trace(f"r{i}")
                with trace:
                    future, _ = coalescer.submit(i % 4, 5)
                traces.append(trace)
                futures.append(future)

            async def wait(future, cancel: bool):
                if cancel:
                    try:
                        await asyncio.wait_for(
                            asyncio.shield(future), timeout=0.0005
                        )
                    except asyncio.TimeoutError:
                        return None
                return await asyncio.shield(future)

            results = await asyncio.gather(
                *[wait(f, i % 3 == 0) for i, f in enumerate(futures)]
            )
            await coalescer.aclose()
            return traces, results

        traces, results = asyncio.run(scenario())
        assert all(r is not None for i, r in enumerate(results) if i % 3)
        for i, trace in enumerate(traces):
            assert trace.root.annotations["coalesce_fan_in"] == 3  # 12 / 4 keys
            assert find_span(trace.to_dict(), "engine.query") is not None
