"""Coalescer tests: dedup, batching, and cancellation/poisoning safety."""

from __future__ import annotations

import asyncio
from concurrent.futures import ThreadPoolExecutor

import numpy as np
import pytest

from repro.exceptions import ServiceClosedError
from repro.net.coalesce import CoalesceStats, QueryCoalescer
from repro.serving.service import ReverseTopKService


@pytest.fixture()
def service(small_web_graph):
    service = ReverseTopKService.from_graph(small_web_graph)
    yield service
    if not service.closed:
        service.close()


@pytest.fixture()
def executor():
    pool = ThreadPoolExecutor(max_workers=1)
    yield pool
    pool.shutdown(wait=True)


def run(coro):
    return asyncio.run(coro)


class TestDedupAndBatching:
    def test_identical_keys_share_one_future(self, service, executor):
        async def scenario():
            coalescer = QueryCoalescer(service, executor, batch_window=0.005)
            first, was_first = coalescer.submit(3, 5)
            second, was_second = coalescer.submit(3, 5)
            assert first is second
            assert (was_first, was_second) == (False, True)
            result = await asyncio.shield(first)
            await coalescer.aclose()
            return result

        result = run(scenario())
        direct = service.engine.query(3, 5, update_index=False)
        np.testing.assert_array_equal(result.nodes, direct.nodes)

    def test_burst_becomes_one_service_call(self, service, executor):
        async def scenario():
            stats = CoalesceStats()
            coalescer = QueryCoalescer(
                service, executor, batch_window=0.005, stats=stats
            )
            futures = [coalescer.submit(q, 5)[0] for q in range(10)]
            results = await asyncio.gather(*map(asyncio.shield, futures))
            await coalescer.aclose()
            return stats, results

        stats, results = run(scenario())
        assert stats.n_batches == 1
        assert stats.n_executed == 10
        assert [r.query for r in results] == list(range(10))

    def test_max_batch_flushes_immediately(self, service, executor):
        async def scenario():
            stats = CoalesceStats()
            coalescer = QueryCoalescer(
                service, executor, batch_window=60.0, max_batch=4, stats=stats
            )
            futures = [coalescer.submit(q, 5)[0] for q in range(4)]
            # window is a minute: only the max_batch trigger can flush
            await asyncio.wait_for(
                asyncio.gather(*map(asyncio.shield, futures)), timeout=10.0
            )
            await coalescer.aclose()
            return stats

        stats = run(scenario())
        assert stats.n_batches == 1

    def test_results_are_bit_identical_to_direct_engine(self, service, executor):
        async def scenario():
            coalescer = QueryCoalescer(service, executor, batch_window=0.001)
            futures = [coalescer.submit(q, 7)[0] for q in range(20)]
            results = await asyncio.gather(*map(asyncio.shield, futures))
            await coalescer.aclose()
            return results

        results = run(scenario())
        for result in results:
            direct = service.engine.query(result.query, 7, update_index=False)
            np.testing.assert_array_equal(result.nodes, direct.nodes)
            np.testing.assert_array_equal(
                result.proximities_to_query, direct.proximities_to_query
            )


class TestCancellationIsolation:
    def test_cancelled_waiter_does_not_cancel_siblings(self, service, executor):
        """One client disconnecting mid-batch must not starve the others."""

        async def scenario():
            coalescer = QueryCoalescer(service, executor, batch_window=0.02)
            shared, _ = coalescer.submit(3, 5)
            sibling_wait = asyncio.ensure_future(asyncio.shield(shared))
            doomed_wait = asyncio.ensure_future(asyncio.shield(shared))
            await asyncio.sleep(0)  # let both waits attach
            doomed_wait.cancel()
            result = await sibling_wait
            assert not shared.cancelled()
            await coalescer.aclose()
            return result

        result = run(scenario())
        assert result.query == 3

    def test_cancelled_request_does_not_poison_dedup_table(
        self, service, executor
    ):
        """After a cancelled wait completes the batch, the key must be
        re-submittable and yield a fresh, correct answer."""

        async def scenario():
            coalescer = QueryCoalescer(service, executor, batch_window=0.01)
            shared, _ = coalescer.submit(4, 5)
            wait = asyncio.ensure_future(asyncio.shield(shared))
            await asyncio.sleep(0)
            wait.cancel()
            # The shared batch still runs to completion underneath.
            await asyncio.wait_for(asyncio.shield(shared), timeout=10.0)
            assert coalescer.n_inflight == 0
            again, coalesced = coalescer.submit(4, 5)
            assert not coalesced  # a fresh future, not the settled one
            result = await asyncio.shield(again)
            await coalescer.aclose()
            return result

        result = run(scenario())
        direct = service.engine.query(4, 5, update_index=False)
        np.testing.assert_array_equal(result.nodes, direct.nodes)


class TestFailureIsolation:
    def test_failed_batch_fails_waiters_and_clears_table(self, executor):
        class ExplodingService:
            def serve(self, keys):
                raise RuntimeError("engine exploded")

        async def scenario():
            stats = CoalesceStats()
            coalescer = QueryCoalescer(
                ExplodingService(), executor, batch_window=0.001, stats=stats
            )
            future, _ = coalescer.submit(1, 5)
            with pytest.raises(RuntimeError, match="engine exploded"):
                await asyncio.shield(future)
            # The failure must not poison the key for later submissions.
            assert coalescer.n_inflight == 0
            retry, coalesced = coalescer.submit(1, 5)
            assert not coalesced
            await coalescer.aclose()
            return stats

        stats = run(scenario())
        assert stats.n_failed_batches == 1

    def test_close_fails_buffered_waiters(self, service, executor):
        async def scenario():
            coalescer = QueryCoalescer(service, executor, batch_window=60.0)
            future, _ = coalescer.submit(1, 5)
            await coalescer.aclose()
            with pytest.raises(ServiceClosedError):
                await future
            with pytest.raises(ServiceClosedError):
                coalescer.submit(2, 5)

        run(scenario())

    def test_validation_rejects_bad_knobs(self, service, executor):
        with pytest.raises(ValueError):
            QueryCoalescer(service, executor, batch_window=-1.0)
        with pytest.raises(ValueError):
            QueryCoalescer(service, executor, max_batch=0)
