"""Smoke test: a real server subprocess, driven over the wire, SIGTERM'd.

This is the CI smoke job's assertion set run in-suite: the standalone entry
point (``python -m repro.net.server``) must come up, serve queries and a
churn batch, expose metrics, and shut down gracefully on SIGTERM (drained
connections, ``SHUTDOWN COMPLETE`` marker, exit code 0).
"""

from __future__ import annotations

import asyncio
import os
from pathlib import Path
import signal
import subprocess
import sys

import pytest

from repro.net import ReverseTopKClient

REPO_ROOT = Path(__file__).resolve().parent.parent.parent


@pytest.fixture()
def server_process():
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src")
    process = subprocess.Popen(
        [
            sys.executable,
            "-m",
            "repro.net.server",
            "--nodes",
            "60",
            "--seed",
            "11",
            "--port",
            "0",
        ],
        env=env,
        stdout=subprocess.PIPE,
        stderr=subprocess.PIPE,
        text=True,
    )
    try:
        line = process.stdout.readline().strip()
        assert line.startswith("LISTENING "), (
            f"expected LISTENING marker, got {line!r}; "
            f"stderr: {process.stderr.read()}"
        )
        _, host, port = line.split()
        yield process, host, int(port)
    finally:
        if process.poll() is None:
            process.kill()
            process.wait(timeout=10)


def test_subprocess_serves_and_shuts_down_gracefully(server_process):
    process, host, port = server_process

    async def workload():
        async with ReverseTopKClient(host, port) as client:
            assert await client.healthz() == {"status": "ok"}
            responses = await asyncio.gather(
                *[client.query(q % 60, 5) for q in range(24)]
            )
            assert {r["index_version"] for r in responses} == {0}
            ack = await client.update([("add", 0, 30), ("remove", 0, 30)])
            assert ack["applied"] == 2
            metrics = await client.metrics()
            assert metrics["tenants"]["default"]["counters"]["admitted"] >= 24
            assert metrics["server"]["n_requests"] >= 26
            return metrics

    metrics = asyncio.run(workload())
    assert metrics["admission"]["pending"] == 0

    process.send_signal(signal.SIGTERM)
    stdout, stderr = process.communicate(timeout=30)
    assert process.returncode == 0, f"non-zero exit; stderr: {stderr}"
    assert "SHUTDOWN COMPLETE" in stdout
