"""Admission-layer tests: driven synchronously with a fake clock."""

from __future__ import annotations

import pytest

from repro.net.admission import (
    AdmissionController,
    AdmissionPolicy,
    DeadlineExceeded,
    QueueFull,
    RateLimited,
    TokenBucket,
)


class FakeClock:
    def __init__(self) -> None:
        self.now = 0.0

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


@pytest.fixture()
def clock() -> FakeClock:
    return FakeClock()


class TestTokenBucket:
    def test_burst_then_refill(self, clock):
        bucket = TokenBucket(rate=10.0, burst=3, now=clock.now)
        assert [bucket.try_acquire(clock.now) for _ in range(3)] == [0.0] * 3
        wait = bucket.try_acquire(clock.now)
        assert wait == pytest.approx(0.1)
        clock.advance(wait)
        assert bucket.try_acquire(clock.now) == 0.0

    def test_tokens_cap_at_burst(self, clock):
        bucket = TokenBucket(rate=100.0, burst=2, now=clock.now)
        clock.advance(100.0)  # a long idle must not bank unlimited tokens
        assert bucket.try_acquire(clock.now) == 0.0
        assert bucket.try_acquire(clock.now) == 0.0
        assert bucket.try_acquire(clock.now) > 0.0


class TestQueueBound:
    def test_sheds_beyond_max_pending(self, clock):
        controller = AdmissionController(
            AdmissionPolicy(max_pending=2), clock=clock
        )
        tickets = [controller.admit(), controller.admit()]
        with pytest.raises(QueueFull) as excinfo:
            controller.admit()
        assert excinfo.value.status == 429
        assert excinfo.value.retry_after is not None
        tickets[0].release()
        controller.admit()  # a freed slot admits again

    def test_peak_pending_tracks_high_water(self, clock):
        controller = AdmissionController(
            AdmissionPolicy(max_pending=8), clock=clock
        )
        tickets = [controller.admit() for _ in range(5)]
        for ticket in tickets:
            ticket.release()
        assert controller.pending == 0
        assert controller.peak_pending == 5

    def test_ticket_release_is_idempotent(self, clock):
        controller = AdmissionController(
            AdmissionPolicy(max_pending=4), clock=clock
        )
        ticket = controller.admit()
        ticket.release()
        ticket.release()  # double release must not unbound the queue
        assert controller.pending == 0
        snapshot = controller.snapshot()
        assert snapshot["tenants"]["default"]["completed"] == 1


class TestRateLimit:
    def test_per_tenant_buckets_are_independent(self, clock):
        controller = AdmissionController(
            AdmissionPolicy(max_pending=100, rate_limit=1.0, burst=1),
            clock=clock,
        )
        controller.admit("a").release()
        with pytest.raises(RateLimited):
            controller.admit("a")
        controller.admit("b").release()  # b has its own bucket

    def test_retry_after_is_exact_token_wait(self, clock):
        controller = AdmissionController(
            AdmissionPolicy(max_pending=100, rate_limit=4.0, burst=1),
            clock=clock,
        )
        controller.admit().release()
        with pytest.raises(RateLimited) as excinfo:
            controller.admit()
        assert excinfo.value.retry_after == pytest.approx(0.25)
        clock.advance(0.25)
        controller.admit().release()


class TestDeadlines:
    def test_expired_deadline_sheds_504(self, clock):
        controller = AdmissionController(
            AdmissionPolicy(max_pending=4), clock=clock
        )
        deadline = controller.deadline_for(50.0)
        clock.advance(0.1)
        with pytest.raises(DeadlineExceeded) as excinfo:
            controller.admit(deadline=deadline)
        assert excinfo.value.status == 504

    def test_default_deadline_applies_when_header_absent(self, clock):
        controller = AdmissionController(
            AdmissionPolicy(max_pending=4, default_deadline_ms=100.0),
            clock=clock,
        )
        assert controller.deadline_for(None) == pytest.approx(0.1)
        controller = AdmissionController(
            AdmissionPolicy(max_pending=4), clock=clock
        )
        assert controller.deadline_for(None) is None

    def test_deadline_shed_happens_before_queue_and_tokens(self, clock):
        controller = AdmissionController(
            AdmissionPolicy(max_pending=1, rate_limit=100.0, burst=1),
            clock=clock,
        )
        controller.admit()  # queue now full, bucket now empty
        deadline = controller.deadline_for(10.0)
        clock.advance(1.0)
        with pytest.raises(DeadlineExceeded):
            controller.admit(deadline=deadline)
        counters = controller.snapshot()["tenants"]["default"]
        assert counters["shed_deadline"] == 1
        assert counters["shed_queue_full"] == 0
        assert counters["shed_rate_limited"] == 0


class TestCounters:
    def test_snapshot_counts_every_outcome(self, clock):
        controller = AdmissionController(
            AdmissionPolicy(max_pending=1), clock=clock
        )
        ticket = controller.admit("acme")
        with pytest.raises(QueueFull):
            controller.admit("acme")
        controller.note_coalesced("acme")
        controller.shed_deadline("acme")
        ticket.release()
        counters = controller.snapshot()["tenants"]["acme"]
        assert counters == {
            "admitted": 1,
            "completed": 1,
            "shed_rate_limited": 0,
            "shed_queue_full": 1,
            "shed_deadline": 1,
            "coalesced": 1,
        }


class TestPolicyValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"max_pending": 0},
            {"burst": 0},
            {"rate_limit": -1.0},
            {"default_deadline_ms": 0.0},
            {"retry_after_s": 0.0},
        ],
    )
    def test_bad_policy_rejected(self, kwargs):
        with pytest.raises(ValueError):
            AdmissionPolicy(**kwargs)
