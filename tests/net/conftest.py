"""Fixtures for the network serving tests: a live threaded server."""

from __future__ import annotations

import pytest

from repro.dynamic import DynamicReverseTopKService
from repro.net import AdmissionPolicy, ServerConfig, start_in_thread


@pytest.fixture()
def dynamic_service(small_web_graph):
    """A fresh dynamic service per test (servers mutate and close it)."""
    service = DynamicReverseTopKService.from_graph(small_web_graph)
    yield service
    if not service.closed:
        service.close()


@pytest.fixture()
def server_handle(dynamic_service):
    """A running server on a background loop thread, torn down after."""
    handle = start_in_thread(
        dynamic_service,
        ServerConfig(admission=AdmissionPolicy(max_pending=128)),
    )
    yield handle
    handle.stop()
