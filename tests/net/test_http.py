"""Framing tests for the stdlib HTTP layer (no sockets: in-memory streams)."""

from __future__ import annotations

import asyncio
import json

import pytest

from repro.net.http import (
    HttpError,
    json_payload,
    read_request,
    read_response,
    render_request,
    render_response,
)


async def _feed(data: bytes, *, eof: bool = True) -> asyncio.StreamReader:
    # StreamReader binds the running loop: create it inside the coroutine.
    reader = asyncio.StreamReader(limit=32 * 1024)
    reader.feed_data(data)
    if eof:
        reader.feed_eof()
    return reader


def parse_request(data: bytes, *, eof: bool = True, **kwargs):
    async def scenario():
        return await read_request(await _feed(data, eof=eof), **kwargs)

    return asyncio.run(scenario())


def parse_response(data: bytes):
    async def scenario():
        return await read_response(await _feed(data))

    return asyncio.run(scenario())


class TestReadRequest:
    def test_parses_post_with_body(self):
        body = b'{"query": 3, "k": 5}'
        wire = (
            b"POST /query HTTP/1.1\r\nHost: x\r\nX-Tenant: acme\r\n"
            b"Content-Length: %d\r\n\r\n%s" % (len(body), body)
        )
        request = parse_request(wire)
        assert request.method == "POST"
        assert request.path == "/query"
        assert request.headers["x-tenant"] == "acme"
        assert request.json() == {"query": 3, "k": 5}

    def test_parses_query_string(self):
        request = parse_request(b"GET /query?query=7&k=3 HTTP/1.1\r\n\r\n")
        assert request.path == "/query"
        assert request.params == {"query": "7", "k": "3"}

    def test_clean_eof_returns_none(self):
        assert parse_request(b"") is None

    def test_mid_request_eof_raises_400(self):
        with pytest.raises(HttpError) as excinfo:
            parse_request(b"GET /query HTT")
        assert excinfo.value.status == 400

    def test_mid_body_eof_raises_400(self):
        wire = b"POST /q HTTP/1.1\r\nContent-Length: 50\r\n\r\nshort"
        with pytest.raises(HttpError) as excinfo:
            parse_request(wire)
        assert excinfo.value.status == 400

    def test_oversized_body_raises_413(self):
        wire = b"POST /q HTTP/1.1\r\nContent-Length: 999\r\n\r\n"
        with pytest.raises(HttpError) as excinfo:
            parse_request(wire, eof=False, max_body_bytes=100)
        assert excinfo.value.status == 413

    def test_oversized_head_raises_431(self):
        wire = b"GET /q HTTP/1.1\r\nX-Pad: " + b"a" * 64 * 1024
        with pytest.raises(HttpError) as excinfo:
            parse_request(wire)
        assert excinfo.value.status == 431

    @pytest.mark.parametrize(
        "wire",
        [
            b"GARBAGE\r\n\r\n",
            b"GET /q HTTP/2 extra words\r\n\r\n",
            b"POST /q HTTP/1.1\r\nContent-Length: nope\r\n\r\n",
            b"POST /q HTTP/1.1\r\nContent-Length: -5\r\n\r\n",
            b"GET /q HTTP/1.1\r\nno-colon-here\r\n\r\n",
        ],
    )
    def test_malformed_raises_400(self, wire):
        with pytest.raises(HttpError) as excinfo:
            parse_request(wire)
        assert excinfo.value.status == 400

    def test_wants_close(self):
        wire = b"GET /q HTTP/1.1\r\nConnection: close\r\n\r\n"
        assert parse_request(wire).wants_close

    def test_bad_json_body_raises_400(self):
        wire = b"POST /q HTTP/1.1\r\nContent-Length: 4\r\n\r\n{{{{"
        request = parse_request(wire)
        with pytest.raises(HttpError) as excinfo:
            request.json()
        assert excinfo.value.status == 400


class TestRoundTrip:
    def test_response_round_trips(self):
        payload = {"nodes": [1, 2], "p": [0.25, 1e-17]}
        wire = render_response(200, json_payload(payload))
        status, headers, body = parse_response(wire)
        assert status == 200
        assert headers["connection"] == "keep-alive"
        assert json.loads(body) == payload

    def test_request_round_trips(self):
        wire = render_request(
            "POST", "/query", body=b"{}", headers={"X-Tenant": "t1"}
        )
        request = parse_request(wire)
        assert request.method == "POST"
        assert request.headers["x-tenant"] == "t1"
        assert request.body == b"{}"

    def test_extra_headers_and_close(self):
        wire = render_response(
            429,
            json_payload({"error": "later"}),
            extra_headers={"Retry-After": "0.050"},
            keep_alive=False,
        )
        status, headers, _ = parse_response(wire)
        assert status == 429
        assert headers["retry-after"] == "0.050"
        assert headers["connection"] == "close"

    def test_float64_bit_exact_through_json(self):
        import numpy as np

        rng = np.random.default_rng(5)
        values = rng.random(64) * rng.choice([1e-300, 1e-9, 1.0, 1e300], 64)
        decoded = json.loads(json_payload({"v": [float(v) for v in values]}))
        assert np.array_equal(
            np.asarray(decoded["v"], dtype=np.float64), values
        )
