"""Rollover tests: cloning, atomic swap, draining, and version integrity."""

from __future__ import annotations

import asyncio
from concurrent.futures import ThreadPoolExecutor

import numpy as np
import pytest

from repro.dynamic import DynamicReverseTopKService, GraphUpdate
from repro.exceptions import ServiceClosedError
from repro.net.coalesce import QueryCoalescer
from repro.net.rollover import (
    RolloverManager,
    ServiceGeneration,
    clone_for_rollover,
)


@pytest.fixture()
def dynamic_service(small_web_graph):
    service = DynamicReverseTopKService.from_graph(small_web_graph)
    yield service
    if not service.closed:
        service.close()


def absent_edges(graph, count):
    present = {(u, v) for u, v, _ in graph.edges()}
    found = []
    for u in range(graph.n_nodes):
        for v in range(graph.n_nodes):
            if u != v and (u, v) not in present:
                found.append((u, v))
                if len(found) == count:
                    return found
    raise RuntimeError("graph is complete")


class TestClone:
    def test_clone_answers_identically_and_independently(self, dynamic_service):
        clone = clone_for_rollover(dynamic_service)
        try:
            original = dynamic_service.engine.query(3, 5, update_index=False)
            cloned = clone.engine.query(3, 5, update_index=False)
            np.testing.assert_array_equal(cloned.nodes, original.nodes)
            np.testing.assert_array_equal(
                cloned.proximities_to_query, original.proximities_to_query
            )
            # Mutating the clone must not leak into the original.
            (edge,) = absent_edges(dynamic_service.graph.materialize(), 1)
            clone.apply_updates([GraphUpdate.add(*edge)])
            assert clone.engine.index.version == 1
            assert dynamic_service.engine.index.version == 0
        finally:
            clone.close()

    def test_clone_of_closed_service_fails(self, dynamic_service):
        dynamic_service.close()
        with pytest.raises(ServiceClosedError):
            clone_for_rollover(dynamic_service)


def make_manager(service, executor):
    def make_coalescer(generation_service):
        return QueryCoalescer(generation_service, executor, batch_window=0.001)

    return RolloverManager(
        service,
        make_coalescer=make_coalescer,
        maintenance_executor=executor,
    )


class TestRolloverManager:
    def test_swap_advances_generation_and_version(self, dynamic_service):
        async def scenario():
            with ThreadPoolExecutor(max_workers=2) as executor:
                manager = make_manager(dynamic_service, executor)
                first = manager.current
                assert (first.generation_id, first.index_version) == (0, 0)
                edges = absent_edges(dynamic_service.graph.materialize(), 2)
                report = await manager.apply_updates(
                    [GraphUpdate.add(*edges[0])]
                )
                assert report.changed
                second = manager.current
                assert second is not first
                assert second.generation_id == 1
                assert second.index_version == 1
                assert manager.n_rollovers == 1
                await manager.aclose()

        asyncio.run(scenario())

    def test_noop_batch_keeps_warm_generation(self, dynamic_service):
        async def scenario():
            with ThreadPoolExecutor(max_workers=2) as executor:
                manager = make_manager(dynamic_service, executor)
                before = manager.current
                u, v, _ = next(iter(dynamic_service.graph.materialize().edges()))
                report = await manager.apply_updates(
                    [GraphUpdate.set_weight(u, v, 2.0)]
                )
                assert not report.changed
                assert manager.current is before  # warm cache preserved
                assert manager.n_noop_batches == 1
                await manager.aclose()

        asyncio.run(scenario())

    def test_old_generation_drains_before_close(self, dynamic_service):
        """A pinned generation survives the swap until its pin releases."""

        async def scenario():
            with ThreadPoolExecutor(max_workers=2) as executor:
                manager = make_manager(dynamic_service, executor)
                old = manager.current
                old.pin()
                edge = absent_edges(dynamic_service.graph.materialize(), 1)[0]
                rollover = asyncio.ensure_future(
                    manager.apply_updates([GraphUpdate.add(*edge)])
                )
                # The swap happens, but retirement blocks on our pin: the
                # old service must still answer.
                while manager.current is old:
                    await asyncio.sleep(0.005)
                assert not old.service.closed
                result = old.service.query(3, 5)
                assert result.query == 3
                old.unpin()
                await rollover
                assert old.service.closed
                await manager.aclose()

        asyncio.run(scenario())

    def test_failed_batch_keeps_old_generation_serving(self, dynamic_service):
        async def scenario():
            with ThreadPoolExecutor(max_workers=2) as executor:
                manager = make_manager(dynamic_service, executor)
                before = manager.current
                u, v, _ = next(iter(dynamic_service.graph.materialize().edges()))
                with pytest.raises(Exception):
                    # Adding an existing edge fails batch validation.
                    await manager.apply_updates([GraphUpdate.add(u, v)])
                assert manager.current is before
                assert not before.service.closed
                assert before.service.query(3, 5).query == 3
                await manager.aclose()

        asyncio.run(scenario())

    def test_retire_runs_service_close_off_the_event_loop(self, dynamic_service):
        """Regression: a slow ``service.close`` must not stall the loop.

        ``close`` takes the index write lock and joins worker pools; calling
        it inline in the retire coroutine froze every other connection for
        the duration of the teardown.  It now runs on the executor, so the
        loop keeps turning while close blocks.
        """
        import threading

        async def scenario():
            with ThreadPoolExecutor(max_workers=2) as executor:
                coalescer = QueryCoalescer(
                    dynamic_service, executor, batch_window=0.001
                )
                generation = ServiceGeneration(0, dynamic_service, coalescer)
                started = threading.Event()
                release = threading.Event()
                real_close = dynamic_service.close

                def slow_close():
                    started.set()
                    assert release.wait(5.0), "test never released close()"
                    real_close()

                dynamic_service.close = slow_close  # instance-attr shadow
                loop = asyncio.get_running_loop()
                try:
                    retirement = asyncio.ensure_future(
                        generation.retire(executor=executor)
                    )
                    await loop.run_in_executor(None, started.wait, 5.0)
                    assert started.is_set()
                    # close() is parked on `release` in the executor; if it
                    # ran on the loop thread we could not get scheduled here
                    # until retirement finished.
                    await asyncio.sleep(0.05)
                    assert not retirement.done()
                finally:
                    release.set()
                await asyncio.wait_for(retirement, timeout=5.0)
                assert dynamic_service.closed

        asyncio.run(scenario())

    def test_closed_manager_rejects_everything(self, dynamic_service):
        async def scenario():
            with ThreadPoolExecutor(max_workers=2) as executor:
                manager = make_manager(dynamic_service, executor)
                await manager.aclose()
                await manager.aclose()  # idempotent
                with pytest.raises(ServiceClosedError):
                    manager.current
                with pytest.raises(ServiceClosedError):
                    await manager.apply_updates([])
                snapshot = manager.snapshot()
                assert snapshot["current"] is None
                assert len(snapshot["retired"]) == 1

        asyncio.run(scenario())
